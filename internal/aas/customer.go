package aas

import (
	"errors"
	"fmt"
	"net/netip"
	"time"

	"footsteps/internal/netsim"
	"footsteps/internal/platform"
	"footsteps/internal/rng"
	"footsteps/internal/step"
	"footsteps/internal/telemetry"
	"footsteps/internal/trace"
)

// PaidProduct identifies what a collusion-network customer bought.
type PaidProduct int

// Paid products.
const (
	PaidNone        PaidProduct = iota
	PaidNoOutbound              // one-time fee: never used as a source
	PaidOneTime                 // one-time bulk likes to a single post
	PaidMonthlyTier             // monthly likes-per-photo subscription
)

// Payment is one customer payment to a service.
type Payment struct {
	At     time.Time
	Amount float64
}

// Customer is one enrolled account as the service sees it: credentials,
// the session the service drives, the offerings requested, and lifecycle
// state. Honeypots enroll through exactly this type.
type Customer struct {
	Account  platform.AccountID
	Username string
	Password string
	Country  string

	// Managed marks customers created by the engine's arrival process;
	// their lifecycle (renewals, churn, home activity) is simulated.
	// Honeypots enroll unmanaged and are driven by their framework.
	Managed bool

	// Wants restricts which offerings the service exercises for this
	// customer; empty means everything the service sells.
	Wants []Offering

	// Hashtags, when set, narrows targeting: the service discovers
	// targets through the platform's hashtag feeds instead of its own
	// curated pool (§3.3.1: customers provide hashtags or user lists).
	Hashtags []string

	EnrolledAt time.Time
	// LongTermIntent: drawn at enrollment; whether this customer will
	// keep engaging beyond the short-term window.
	LongTermIntent bool
	// EngagedUntil bounds a short-term customer's activity.
	EngagedUntil time.Time
	// Churned marks a long-term customer who quit.
	Churned bool

	// PaidThrough covers the prepaid service period (reciprocity).
	PaidThrough time.Time
	Payments    []Payment
	// FirstPaidBeforeStudy marks customers who were already paying before
	// the measurement window (Table 10's "preexisting").
	FirstPaidBeforeStudy bool

	// Product and Tier describe a collusion customer's purchase.
	Product PaidProduct
	Tier    int // index into CollusionPricing.MonthlyTiers

	session    *platform.Session // AAS-held session (service infrastructure)
	ownSession *platform.Session // the human's own session (home network)

	// adaptive per-action-type rate control (block-detection state).
	adapt map[platform.ActionType]*adaptiveRate

	// recentFollows is a bounded queue of service-created follows pending
	// automatic unfollow.
	recentFollows []pendingUnfollow
	unfollowAfter bool

	// lastFreeRequest rate-limits a collusion customer's free requests.
	lastFreeRequest time.Time

	// totals tallies actions the service has performed with the account,
	// the numbers a customer's dashboard displays (Figure 1).
	totals map[platform.ActionType]int

	// rng is the customer's private random stream, forked from the
	// service stream at enrollment. Every per-customer decision in the
	// engines' planning phase draws from it, so partitioning customers
	// into shards — on any number of workers — never changes the numbers
	// any customer sees. See docs/DETERMINISM.md.
	rng *rng.RNG

	// relRNG is a second private stream feeding only the resilience
	// layer (backoff jitter, re-login IP choice). Keeping fault-path
	// draws off c.rng guarantees the fault machinery cannot shift the
	// planning stream — part of the faults-off byte-identity argument
	// in docs/FAULTS.md.
	relRNG *rng.RNG

	// br is the per-customer circuit breaker over injected
	// infrastructure failures (see resilience.go).
	br breaker

	// tagScratch is the reusable buffer pickTarget fills from the
	// hashtag feed each draw. Customer-local because targeting runs in
	// the parallel planning phase: one buffer per customer means one
	// goroutine ever touches it.
	tagScratch []platform.PostID
}

// Totals returns a copy of the service-performed action counts.
func (c *Customer) Totals() map[platform.ActionType]int {
	out := make(map[platform.ActionType]int, len(c.totals))
	for k, v := range c.totals {
		out[k] = v
	}
	return out
}

// countAction bumps the dashboard tally.
func (c *Customer) countAction(t platform.ActionType) {
	if c.totals == nil {
		c.totals = make(map[platform.ActionType]int)
	}
	c.totals[t]++
}

type pendingUnfollow struct {
	target platform.AccountID
	due    time.Time
}

// pendingRetry is one scheduled-but-unfired backoff retry. Entries live
// in base.retries so snapshots can serialize them; the scheduled callback
// only points at the entry (see state.go).
type pendingRetry struct {
	c       *Customer
	req     platform.Request
	attempt int
	due     time.Time
	done    bool
}

// wants reports whether the customer requested offering o from a service
// that sells it.
func (c *Customer) wants(s *Spec, o Offering) bool {
	if !s.Offers(o) {
		return false
	}
	if len(c.Wants) == 0 {
		return true
	}
	for _, w := range c.Wants {
		if w == o {
			return true
		}
	}
	return false
}

// adaptiveRate implements the per-account block detector the paper found in
// an open implementation (§6.3): when the platform starts blocking an action
// type, pause for a few hours, cap the daily rate at the observed success
// count, then probe upward.
type adaptiveRate struct {
	learnedCap   float64   // estimated allowed actions/day; 0 = no cap learned
	todayCount   int       // successes so far today
	todayBlocked bool      // saw a block today
	blockedUntil time.Time // cooldown after a block
	probeWait    int       // days until the next upward probe
}

// ready reports whether the block cooldown has passed.
func (a *adaptiveRate) ready(now time.Time) bool {
	return !now.Before(a.blockedUntil)
}

// target returns today's intended action count given the plan rate.
func (a *adaptiveRate) target(plan float64) float64 {
	if a.learnedCap <= 0 {
		return plan
	}
	t := a.learnedCap
	if a.probeWait <= 0 {
		// Probe: try a bit above the learned cap to re-test the limit.
		t = a.learnedCap * 1.15
	}
	if t > plan {
		t = plan
	}
	return t
}

// onBlocked records a synchronous block: the success count so far is the
// service's new estimate of the per-day threshold.
// Transient blocks early in a day must not starve the service, so the
// estimate never falls below half the previous one (nor below a small
// floor) — consistent with the open block-detection implementations the
// paper found, which treat an isolated block as noise, not a hard limit.
func (a *adaptiveRate) onBlocked(now time.Time, probeInterval int) {
	a.blockedUntil = now.Add(3 * time.Hour)
	if a.todayBlocked {
		return // the day's estimate is already updated
	}
	a.todayBlocked = true
	cap := float64(a.todayCount)
	if half := a.learnedCap / 2; cap < half {
		cap = half
	}
	if cap < 5 {
		cap = 5
	}
	a.learnedCap = cap
	a.probeWait = probeInterval
}

// endDay rolls the day boundary.
func (a *adaptiveRate) endDay() {
	a.todayCount = 0
	if !a.todayBlocked && a.learnedCap > 0 {
		if a.probeWait > 0 {
			a.probeWait--
		} else {
			// The probe went unanswered; the limit may have moved up.
			a.learnedCap *= 1.15
		}
	}
	a.todayBlocked = false
}

// base carries the machinery shared by both engine kinds.
type base struct {
	spec  *Spec
	plat  *platform.Platform
	sched Scheduler
	rng   *rng.RNG
	net   *netsim.Registry

	customers []*Customer
	byID      map[platform.AccountID]*Customer

	// api is the platform API the service drives accounts through. Real
	// AASs spoof the private mobile API (the default); the public OAuth
	// API is rate-limited into uselessness for abuse (§2) — see the
	// AblationAPI benchmark.
	api platform.APIKind

	// serviceIPs is the service's automation address pool. Small by
	// design: commercial AASs concentrate traffic on few addresses.
	serviceIPs []netip.Addr
	// proxies, when set, replaces serviceIPs for action traffic — the
	// §6.4 evasion move.
	proxies *netsim.ProxyPool

	// steps is the worker pool the engines' tick planning fans out on.
	// nil plans inline; either way the apply sequence is identical.
	steps *step.Pool

	// Per-tick reusable scratch (see docs/PERFORMANCE.md): the customer
	// filter slice every tick rebuilds, plus chunk/intent buffers per
	// intent type. Reuse is a pure memory optimization — buffers are
	// truncated to zero length before refill, so no tick ever observes a
	// previous tick's contents; the simtest pooling property test diffs
	// reuse-on vs reuse-off streams to pin that. noReuse (via
	// SetScratchReuse(false)) restores fresh per-tick allocations.
	custScratch []*Customer
	planScratch tickScratch[plannedOp]
	lifeScratch tickScratch[lifeOp]
	freeScratch tickScratch[freeReq]
	noReuse     bool

	// GroundTruth tallies for validating platform-side estimates.
	Revenue       float64
	AdImpressions int

	// rp is the shared retry/breaker policy applied to every customer's
	// automation traffic (see resilience.go).
	rp RetryPolicy

	// retries is the table of scheduled-but-unfired backoff retries.
	// Mutated only on the (serial) scheduler/apply path.
	retries []*pendingRetry

	// telemetry counters for the service's automation outcomes; set by
	// WireTelemetry, nil (inert) otherwise. Incremented only during the
	// serial apply phase, so plain counters on atomics suffice.
	telAttempts  *telemetry.Counter
	telSuccesses *telemetry.Counter

	// resilience-layer instruments (nil-safe; see docs/OBSERVABILITY.md).
	telRetrySched    *telemetry.Counter
	telRetryOK       *telemetry.Counter
	telRetryDrop     *telemetry.Counter
	telRelogin       *telemetry.Counter
	telReloginOK     *telemetry.Counter
	telBreakerOpen   *telemetry.Counter
	telBreakerReopen *telemetry.Counter
	telBreakerClose  *telemetry.Counter
	telShed          [int(platform.ActionLogin) + 1]*telemetry.Counter

	// tracer records retry/breaker transition spans (nil = tracing off);
	// set by WireTrace during world construction. Pure observer, touched
	// only on the serial apply/scheduler path.
	tracer *trace.Tracer

	stopped bool
}

func newBase(spec *Spec, plat *platform.Platform, sched Scheduler, r *rng.RNG, ipPool int) *base {
	if ipPool <= 0 {
		ipPool = 48
	}
	b := &base{
		spec:  spec,
		plat:  plat,
		sched: sched,
		rng:   r,
		net:   plat.Net(),
		byID:  make(map[platform.AccountID]*Customer),
		rp:    DefaultRetryPolicy(),
	}
	for i := 0; i < ipPool; i++ {
		b.serviceIPs = append(b.serviceIPs, b.net.Allocate(spec.ASNs[i%len(spec.ASNs)]))
	}
	return b
}

// Scheduler is the minimal scheduling surface the engines need, satisfied
// by *clock.Scheduler.
type Scheduler interface {
	After(d time.Duration, fn func())
	EveryDay(offset time.Duration, days int, fn func(day int))
}

// SetAPI switches the platform API the service's sessions use. Only
// meaningful before any enrollment.
func (b *base) SetAPI(kind platform.APIKind) { b.api = kind }

// SetStepPool installs the worker pool used for parallel intent
// generation during ticks. A nil pool (the default) plans inline.
func (b *base) SetStepPool(p *step.Pool) { b.steps = p }

// SetScratchReuse toggles cross-tick reuse of the engine's planning
// scratch (filter slices, chunk bounds, intent buffers). Reuse is on by
// default and never changes the event stream; turning it off exists for
// the simtest pooling property test and for bisecting suspected scratch
// leaks.
func (b *base) SetScratchReuse(on bool) { b.noReuse = !on }

// filterCustomers returns a zero-length customer slice to filter into,
// reusing the engine's scratch capacity unless reuse is disabled. The
// caller must pass the appended result to keepFilter so the grown
// capacity survives to the next tick.
func (b *base) filterCustomers() []*Customer {
	if b.noReuse {
		return nil
	}
	return b.custScratch[:0]
}

// keepFilter stores a filterCustomers slice back for the next tick.
func (b *base) keepFilter(s []*Customer) {
	if !b.noReuse {
		b.custScratch = s
	}
}

// Scratch selectors: each returns the engine's reusable tick scratch for
// one intent type, or nil (fresh allocations) when reuse is disabled.
func (b *base) planSC() *tickScratch[plannedOp] {
	if b.noReuse {
		return nil
	}
	return &b.planScratch
}

func (b *base) lifeSC() *tickScratch[lifeOp] {
	if b.noReuse {
		return nil
	}
	return &b.lifeScratch
}

func (b *base) freeSC() *tickScratch[freeReq] {
	if b.noReuse {
		return nil
	}
	return &b.freeScratch
}

// WireTelemetry registers per-service attempt/success counters on reg,
// named aas.<service>.attempts / aas.<service>.successes. Telemetry is a
// pure observer; a nil reg leaves the service untouched.
func (b *base) WireTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	b.telAttempts = reg.Counter("aas." + b.spec.Name + ".attempts")
	b.telSuccesses = reg.Counter("aas." + b.spec.Name + ".successes")
	b.telRetrySched = reg.Counter("aas." + b.spec.Name + ".retries.scheduled")
	b.telRetryOK = reg.Counter("aas." + b.spec.Name + ".retries.recovered")
	b.telRetryDrop = reg.Counter("aas." + b.spec.Name + ".retries.exhausted")
	b.telRelogin = reg.Counter("aas." + b.spec.Name + ".relogin.attempts")
	b.telReloginOK = reg.Counter("aas." + b.spec.Name + ".relogin.recovered")
	b.telBreakerOpen = reg.Counter("aas." + b.spec.Name + ".breaker.opened")
	b.telBreakerReopen = reg.Counter("aas." + b.spec.Name + ".breaker.reopened")
	b.telBreakerClose = reg.Counter("aas." + b.spec.Name + ".breaker.closed")
	for t := platform.ActionLike; t <= platform.ActionPost; t++ {
		b.telShed[t] = reg.Counter("aas." + b.spec.Name + ".shed." + t.String())
	}
}

// WireTrace installs the span tracer: retry schedulings and breaker
// transitions then emit instant spans parented (when possible) onto the
// platform request that provoked them. Nil leaves tracing off.
func (b *base) WireTrace(tr *trace.Tracer) { b.tracer = tr }

// countOutcome tallies one applied automation action into telemetry:
// every call is an attempt, err == nil a success.
func (b *base) countOutcome(err error) {
	b.telAttempts.Inc()
	if err == nil {
		b.telSuccesses.Inc()
	}
}

// actionIP picks the source address for the next automation request.
func (b *base) actionIP() netip.Addr {
	if b.proxies != nil {
		return b.proxies.Pick()
	}
	return b.serviceIPs[b.rng.Intn(len(b.serviceIPs))]
}

// UseProxyNetwork switches all subsequent automation traffic to the proxy
// pool — the evasion the epilogue describes.
func (b *base) UseProxyNetwork(p *netsim.ProxyPool) { b.proxies = p }

// Stop halts all future automation (service shutdown / "out of stock").
func (b *base) Stop() { b.stopped = true }

// Stopped reports whether the service has shut down.
func (b *base) Stopped() bool { return b.stopped }

// Customers returns all enrolled customers.
func (b *base) Customers() []*Customer { return b.customers }

// Customer returns the enrollment record for an account.
func (b *base) Customer(id platform.AccountID) (*Customer, bool) {
	c, ok := b.byID[id]
	return c, ok
}

// Enroll registers the credentials with the service. The service logs in
// immediately from its own infrastructure — the paper's registration flow —
// and begins automation on its normal cadence. wants restricts offerings
// (nil = all).
func (b *base) Enroll(username, password string, wants []Offering) (*Customer, error) {
	sess, err := b.plat.Login(username, password, platform.ClientInfo{
		IP:          b.actionIP(),
		Fingerprint: b.spec.Fingerprint,
		API:         b.api, // zero value is the spoofed private API
	})
	if err != nil {
		return nil, fmt.Errorf("aas %s: enroll %s: %w", b.spec.Name, username, err)
	}
	c := &Customer{
		Account:    sess.Account(),
		Username:   username,
		Password:   password,
		Wants:      wants,
		EnrolledAt: b.plat.Now(),
		session:    sess,
		adapt:      make(map[platform.ActionType]*adaptiveRate),
		rng:        b.rng.Fork(uint64(len(b.customers))),
	}
	// Split is a pure function of the child stream's lineage — it
	// consumes no draws — so carving off the resilience stream cannot
	// shift any existing sequence.
	c.relRNG = c.rng.Split("resilience")
	b.customers = append(b.customers, c)
	b.byID[c.Account] = c
	return c, nil
}

func (b *base) adaptFor(c *Customer, t platform.ActionType) *adaptiveRate {
	a := c.adapt[t]
	if a == nil {
		a = &adaptiveRate{}
		c.adapt[t] = a
	}
	return a
}

// pay records a payment on both the customer and the service ledger.
func (b *base) pay(c *Customer, amount float64) {
	c.Payments = append(c.Payments, Payment{At: b.plat.Now(), Amount: amount})
	b.Revenue += amount
}

// pickCountry draws a customer country from the service's Figure 2 mix.
func (b *base) pickCountry() string {
	ws := b.spec.Customers.Countries
	if len(ws) == 0 {
		return "USA"
	}
	var total float64
	for _, w := range ws {
		total += w.Weight
	}
	x := b.rng.Float64() * total
	for _, w := range ws {
		if x < w.Weight {
			return w.Country
		}
		x -= w.Weight
	}
	return ws[len(ws)-1].Country
}

// homeCountryASN maps a customer country to a residential ASN; OTHER and
// unknown countries land on a uniformly random residential network.
func (b *base) homeCountryASN(country string) netsim.ASN {
	res := b.net.ByKind(netsim.KindResidential)
	if len(res) == 0 {
		panic("aas: no residential ASNs registered")
	}
	var match []netsim.ASN
	for _, a := range res {
		if info, ok := b.net.Info(a); ok && info.Country == country {
			match = append(match, a)
		}
	}
	if len(match) == 0 {
		return res[b.rng.Intn(len(res))]
	}
	return match[b.rng.Intn(len(match))]
}

// probeInterval is how many days a service waits after learning a cap
// before probing upward again.
const probeInterval = 3

// diurnalWeights modulates hourly automation volume to mimic human
// activity (sophisticated services pace their bots like people: quiet
// overnight, peaks midday and evening). Values average 1.0 so daily
// totals match the plan rates.
var diurnalWeights = [24]float64{
	0.35, 0.25, 0.20, 0.20, 0.25, 0.40, // 00–05
	0.65, 0.90, 1.15, 1.30, 1.40, 1.45, // 06–11
	1.45, 1.40, 1.30, 1.25, 1.25, 1.30, // 12–17
	1.45, 1.55, 1.50, 1.25, 0.90, 0.60, // 18–23
}

// diurnal returns the activity weight for the hour of t.
func diurnal(t time.Time) float64 { return diurnalWeights[t.Hour()] }

// ReloginAll re-authenticates every live customer session from the
// service's current address pool. Services do this after switching to a
// proxy network (§6.4) so that subsequent actions originate from the new
// address space. It returns the number of refreshed sessions.
func (b *base) ReloginAll() int {
	n := 0
	for _, c := range b.customers {
		if c.Churned {
			continue
		}
		sess, err := b.plat.Login(c.Username, c.Password, platform.ClientInfo{
			IP:          b.actionIP(),
			Fingerprint: b.spec.Fingerprint,
			API:         b.api,
		})
		if err != nil {
			if errors.Is(err, platform.ErrUnavailable) {
				continue // infrastructure blip: keep the old session
			}
			c.Churned = true // password changed under the service
			continue
		}
		c.session = sess
		n++
	}
	return n
}
