package aas

import (
	"fmt"
	"strings"

	"footsteps/internal/platform"
)

// ControlPanel renders a customer's dashboard the way Figure 1 shows
// Instalex's: the action counts the service has performed on the account,
// plus subscription status. Services show their customers exactly this to
// demonstrate value for money.
func (s *ReciprocityService) ControlPanel(c *Customer) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — account %q\n", s.spec.Name, c.Username)
	now := s.plat.Now()
	switch {
	case c.Churned:
		b.WriteString("status: service lost (credentials changed)\n")
	case now.Before(c.EngagedUntil) && c.PaidThrough.IsZero():
		fmt.Fprintf(&b, "status: FREE TRIAL until %s\n", c.EngagedUntil.Format("2006-01-02"))
	case now.Before(c.PaidThrough):
		fmt.Fprintf(&b, "status: ACTIVE until %s\n", c.PaidThrough.Format("2006-01-02"))
	default:
		b.WriteString("status: EXPIRED — renew to continue\n")
	}
	b.WriteString("actions performed on Instagram:\n")
	for _, t := range []platform.ActionType{
		platform.ActionLike, platform.ActionFollow, platform.ActionUnfollow,
		platform.ActionComment, platform.ActionPost,
	} {
		if !s.spec.Offers(offeringFor(t)) {
			continue
		}
		fmt.Fprintf(&b, "  %-10s %7d\n", t.String()+"s", c.totals[t])
	}
	var paid float64
	for _, p := range c.Payments {
		paid += p.Amount
	}
	fmt.Fprintf(&b, "total paid: $%.2f\n", paid)
	return b.String()
}

// offeringFor maps an action type to the offering that sells it.
func offeringFor(t platform.ActionType) Offering {
	switch t {
	case platform.ActionLike:
		return OfferLike
	case platform.ActionFollow:
		return OfferFollow
	case platform.ActionUnfollow:
		return OfferUnfollow
	case platform.ActionComment:
		return OfferComment
	case platform.ActionPost:
		return OfferPost
	default:
		return Offering(-1)
	}
}
