// Package persistence implements the FSNAP world-snapshot format: a
// versioned binary encoding of everything the simulation step path
// touches, written at day boundaries and restored into a freshly
// constructed world (see docs/PERSISTENCE.md).
//
// The current format is FSNAP2, which delta-encodes the sorted
// adjacency lists that dominate large-world snapshots. FSNAP1 streams
// (written before the struct-of-arrays state refactor) still decode:
// the magic selects the wire version, and the decoder keeps both list
// readers.
//
// The codec mirrors the FSEV1 event codec in internal/eventio: uvarint
// integers, length-prefixed strings, a fixed magic header, and typed
// errors with byte offsets so a truncated or corrupt checkpoint is
// diagnosable. The decoder is hardened against arbitrary input — it
// must never panic and never allocate proportionally to a lying length
// prefix — because the snapshot fuzz target feeds it garbage.
package persistence

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net/netip"
	"time"

	"footsteps/internal/rng"
)

// Version is the current snapshot format version. Bump it on any layout
// change; snapshots from unknown versions are rejected with a
// MismatchError rather than misread (see docs/PERSISTENCE.md for the
// versioning policy). VersionV1 streams remain decodable.
const (
	Version   = 2
	VersionV1 = 1
)

// magic identifies a current-format snapshot stream. Deliberately
// distinct from the FSEV1 event-log magic so the two file kinds cannot
// be confused. magicV1 is the legacy magic the decoder still accepts.
var (
	magic   = []byte("FSNAP2\n")
	magicV1 = []byte("FSNAP1\n")
)

// maxStr caps decoded string lengths; nothing in a snapshot comes close.
const maxStr = 1 << 20

// maxCount caps decoded element counts. Real snapshots stay well under
// this; a corrupt length prefix fails fast instead of driving a huge loop.
const maxCount = 1 << 26

// ErrBadMagic reports input that starts with neither FSNAP magic.
var ErrBadMagic = errors.New("persistence: bad magic (not an FSNAP snapshot)")

// MismatchError reports a snapshot whose header is incompatible with
// what the caller expects: wrong format version, wrong seed, or wrong
// config fingerprint.
type MismatchError struct {
	Field string
	Got   uint64
	Want  uint64
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("persistence: snapshot %s mismatch: got %#x, want %#x", e.Field, e.Got, e.Want)
}

// TruncatedError reports input that ended (or turned to garbage) before
// the structure was complete, with the byte offset where decoding failed.
type TruncatedError struct {
	Offset int64
	Err    error
}

func (e *TruncatedError) Error() string {
	return fmt.Sprintf("persistence: truncated or corrupt snapshot at offset %d: %v", e.Offset, e.Err)
}

func (e *TruncatedError) Unwrap() error { return e.Err }

// Encoder builds a snapshot byte stream with append-only primitives.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded stream.
func (e *Encoder) Bytes() []byte { return e.buf }

// Raw appends bytes verbatim (used for the magic header).
func (e *Encoder) Raw(b []byte) { e.buf = append(e.buf, b...) }

// U64 appends an unsigned varint.
func (e *Encoder) U64(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// I64 appends a signed (zigzag) varint.
func (e *Encoder) I64(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// Int appends a signed integer.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// Bool appends a single 0/1 byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// F64 appends a float64 as 8 fixed little-endian bytes (bit-exact).
func (e *Encoder) F64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

// Str appends a length-prefixed string.
func (e *Encoder) Str(s string) {
	e.U64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Time appends an instant as uvarint nanoseconds since the Unix epoch,
// with 0 reserved for the zero time. The simulation clock starts in
// 2017, so no real instant collides with the sentinel.
func (e *Encoder) Time(t time.Time) {
	if t.IsZero() {
		e.U64(0)
		return
	}
	e.U64(uint64(t.UnixNano()))
}

// Addr appends an IPv4 address as a presence flag plus the big-endian
// address bits. The simulated internet is IPv4-only.
func (e *Encoder) Addr(a netip.Addr) {
	if !a.IsValid() || !a.Is4() {
		e.Bool(false)
		return
	}
	e.Bool(true)
	b := a.As4()
	e.U64(uint64(b[0])<<24 | uint64(b[1])<<16 | uint64(b[2])<<8 | uint64(b[3]))
}

// RNG appends an rng.State (four words plus lineage).
func (e *Encoder) RNG(st rng.State) {
	for _, w := range st.S {
		e.buf = binary.LittleEndian.AppendUint64(e.buf, w)
	}
	e.buf = binary.LittleEndian.AppendUint64(e.buf, st.Lineage)
}

// Decoder consumes a snapshot byte stream. Errors are sticky: after the
// first failure every primitive returns its zero value, so composite
// decoders can run straight-line and check Err once per structure.
type Decoder struct {
	data []byte
	off  int
	err  error
}

// NewDecoder wraps a fully read snapshot stream.
func NewDecoder(data []byte) *Decoder { return &Decoder{data: data} }

// Err returns the first decoding failure, if any.
func (d *Decoder) Err() error { return d.err }

// Offset returns the current byte offset.
func (d *Decoder) Offset() int64 { return int64(d.off) }

func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = &TruncatedError{Offset: int64(d.off), Err: fmt.Errorf(format, args...)}
	}
}

// Magic consumes the FSNAP magic and returns the wire version it names
// (Version for FSNAP2, VersionV1 for FSNAP1; 0 with ErrBadMagic set on
// anything else).
func (d *Decoder) Magic() uint64 {
	if d.err != nil {
		return 0
	}
	rest := d.data[d.off:]
	switch {
	case len(rest) >= len(magic) && string(rest[:len(magic)]) == string(magic):
		d.off += len(magic)
		return Version
	case len(rest) >= len(magicV1) && string(rest[:len(magicV1)]) == string(magicV1):
		d.off += len(magicV1)
		return VersionV1
	}
	d.err = ErrBadMagic
	return 0
}

// U64 consumes an unsigned varint.
func (d *Decoder) U64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.fail("short or overlong uvarint")
		return 0
	}
	d.off += n
	return v
}

// I64 consumes a signed (zigzag) varint.
func (d *Decoder) I64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		d.fail("short or overlong varint")
		return 0
	}
	d.off += n
	return v
}

// Int consumes a signed integer.
func (d *Decoder) Int() int { return int(d.I64()) }

// Bool consumes a 0/1 byte.
func (d *Decoder) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.data) {
		d.fail("short bool")
		return false
	}
	b := d.data[d.off]
	if b > 1 {
		d.fail("bad bool byte %#x", b)
		return false
	}
	d.off++
	return b == 1
}

// F64 consumes 8 fixed bytes as a float64.
func (d *Decoder) F64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.data)-d.off < 8 {
		d.fail("short float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.data[d.off:]))
	d.off += 8
	return v
}

// Str consumes a length-prefixed string.
func (d *Decoder) Str() string {
	n := d.U64()
	if d.err != nil {
		return ""
	}
	if n > maxStr {
		d.fail("string length %d exceeds cap %d", n, maxStr)
		return ""
	}
	if uint64(len(d.data)-d.off) < n {
		d.fail("short string: need %d bytes, have %d", n, len(d.data)-d.off)
		return ""
	}
	s := string(d.data[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// Count consumes an element count, bounded so a corrupt prefix cannot
// drive a runaway loop or allocation.
func (d *Decoder) Count() int {
	n := d.U64()
	if d.err != nil {
		return 0
	}
	if n > maxCount {
		d.fail("element count %d exceeds cap %d", n, maxCount)
		return 0
	}
	return int(n)
}

// Time consumes an instant (0 means the zero time).
func (d *Decoder) Time() time.Time {
	ns := d.U64()
	if d.err != nil || ns == 0 {
		return time.Time{}
	}
	if ns > math.MaxInt64 {
		d.fail("time %d overflows int64 nanoseconds", ns)
		return time.Time{}
	}
	return time.Unix(0, int64(ns)).UTC()
}

// Addr consumes an IPv4 address (presence flag plus bits).
func (d *Decoder) Addr() netip.Addr {
	if !d.Bool() {
		return netip.Addr{}
	}
	bits := d.U64()
	if d.err != nil {
		return netip.Addr{}
	}
	if bits > math.MaxUint32 {
		d.fail("IPv4 bits %#x overflow 32 bits", bits)
		return netip.Addr{}
	}
	return netip.AddrFrom4([4]byte{byte(bits >> 24), byte(bits >> 16), byte(bits >> 8), byte(bits)})
}

// RNG consumes an rng.State.
func (d *Decoder) RNG() rng.State {
	if d.err != nil {
		return rng.State{}
	}
	if len(d.data)-d.off < 40 {
		d.fail("short rng state")
		return rng.State{}
	}
	var st rng.State
	for i := range st.S {
		st.S[i] = binary.LittleEndian.Uint64(d.data[d.off:])
		d.off += 8
	}
	st.Lineage = binary.LittleEndian.Uint64(d.data[d.off:])
	d.off += 8
	return st
}

// Done verifies the stream was fully consumed. Trailing bytes are an
// error: they mean the reader and writer disagree about the layout.
func (d *Decoder) Done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.data) {
		return &TruncatedError{
			Offset: int64(d.off),
			Err:    fmt.Errorf("%d trailing bytes after snapshot end", len(d.data)-d.off),
		}
	}
	return nil
}
