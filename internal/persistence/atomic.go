package persistence

import (
	"os"
	"path/filepath"
)

// AtomicWriteFile lands data at path with crash safety: it writes a
// sibling tmp file, fsyncs it, renames it over the target, and fsyncs
// the parent directory. After a power loss the target holds either its
// previous contents or the new bytes in full — never a torn mix. The
// tmp file is removed on any failure.
func AtomicWriteFile(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
