package persistence

import (
	"io"
	"time"

	"footsteps/internal/aas"
	"footsteps/internal/behavior"
	"footsteps/internal/detection"
	"footsteps/internal/honeypot"
	"footsteps/internal/netsim"
	"footsteps/internal/platform"
	"footsteps/internal/rng"
	"footsteps/internal/socialgraph"
)

// Header identifies a snapshot: the format version, the seed and config
// fingerprint of the world that wrote it, and the day/instant cursor at
// which it was taken. Restore refuses a header whose version, seed, or
// fingerprint does not match the target config (MismatchError).
type Header struct {
	Version     uint64
	Seed        uint64
	Fingerprint uint64
	Day         int
	Now         time.Time
}

// WorldState aggregates the per-component snapshot states that together
// cover everything the step path touches. Service states are keyed by
// name so restore can route each to the right engine regardless of
// registration order.
type WorldState struct {
	Root      rng.State
	NetAlloc  []netsim.AllocState
	Platform  *platform.State
	Graph     *socialgraph.State
	Behavior  *behavior.State
	Honeypots *honeypot.State
	Guard     *detection.IPVolumeGuardState // nil when no guard is installed
	Recip     []NamedRecip
	Coll      []NamedColl
	VPNRNGs   []rng.State
	CrossRNG  rng.State
	CrossSeen []ServiceCount // sorted by name
}

// NamedRecip is one reciprocity service's state, keyed by service name.
type NamedRecip struct {
	Name  string
	State *aas.ReciprocityState
}

// NamedColl is one collusion service's state, keyed by service name.
type NamedColl struct {
	Name  string
	State *aas.CollusionState
}

// ServiceCount is one cross-enrollment cursor.
type ServiceCount struct {
	Name string
	N    int
}

// Encode writes the magic, header, and world state to w as one FSNAP2
// stream. The caller stamps h.Version (normally the Version constant).
func Encode(w io.Writer, h Header, st *WorldState) error {
	_, err := w.Write(EncodeBytes(h, st))
	return err
}

// EncodeBytes is Encode into a fresh byte slice.
func EncodeBytes(h Header, st *WorldState) []byte {
	var e Encoder
	e.Raw(magic)
	e.U64(h.Version)
	e.U64(h.Seed)
	e.U64(h.Fingerprint)
	e.Int(h.Day)
	e.Time(h.Now)
	encWorld(&e, st)
	return e.Bytes()
}

// Decode reads a full FSNAP stream from r.
func Decode(r io.Reader) (Header, *WorldState, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return Header{}, nil, err
	}
	return DecodeBytes(data)
}

// DecodeBytes decodes a full FSNAP stream, current (FSNAP2) or legacy
// (FSNAP1). It rejects bad magic (ErrBadMagic), a header version that
// disagrees with the magic (MismatchError), and truncated or trailing
// input (TruncatedError with the offending byte offset). It never
// panics, whatever the input.
func DecodeBytes(data []byte) (Header, *WorldState, error) {
	d := NewDecoder(data)
	wire := d.Magic()
	var h Header
	h.Version = d.U64()
	h.Seed = d.U64()
	h.Fingerprint = d.U64()
	h.Day = d.Int()
	h.Now = d.Time()
	if err := d.Err(); err != nil {
		return Header{}, nil, err
	}
	if h.Version != wire {
		return h, nil, &MismatchError{Field: "format version", Got: h.Version, Want: wire}
	}
	st := decWorld(d, wire)
	if err := d.Done(); err != nil {
		return h, nil, err
	}
	return h, st, nil
}

// --- generic slice helpers ---

func encSlice[T any](e *Encoder, xs []T, enc func(*Encoder, *T)) {
	e.U64(uint64(len(xs)))
	for i := range xs {
		enc(e, &xs[i])
	}
}

func decSlice[T any](d *Decoder, dec func(*Decoder, *T)) []T {
	n := d.Count()
	var xs []T
	for i := 0; i < n && d.err == nil; i++ {
		var x T
		dec(d, &x)
		xs = append(xs, x)
	}
	return xs
}

func encU64s[T ~uint64](e *Encoder, xs []T) {
	e.U64(uint64(len(xs)))
	for _, x := range xs {
		e.U64(uint64(x))
	}
}

// encU64sDelta encodes a sorted list as its first value followed by
// gaps. Graph adjacency dominates a large-world snapshot, and dense
// sequential IDs make most gaps single-byte varints where the absolute
// IDs grow to four or five bytes. Only ever applied to lists the
// snapshot contract keeps sorted; an unsorted list is a writer bug.
func encU64sDelta[T ~uint64](e *Encoder, xs []T) {
	e.U64(uint64(len(xs)))
	prev := uint64(0)
	for _, x := range xs {
		v := uint64(x)
		if v < prev {
			panic("persistence: delta-encoding an unsorted list")
		}
		e.U64(v - prev)
		prev = v
	}
}

func decU64sDelta[T ~uint64](d *Decoder) []T {
	n := d.Count()
	var xs []T
	prev := uint64(0)
	for i := 0; i < n && d.err == nil; i++ {
		v := prev + d.U64()
		if v < prev {
			d.fail("delta list overflows uint64")
			break
		}
		xs = append(xs, T(v))
		prev = v
	}
	return xs
}

func decU64s[T ~uint64](d *Decoder) []T {
	n := d.Count()
	var xs []T
	for i := 0; i < n && d.err == nil; i++ {
		xs = append(xs, T(d.U64()))
	}
	return xs
}

func encInts[T ~int](e *Encoder, xs []T) {
	e.U64(uint64(len(xs)))
	for _, x := range xs {
		e.Int(int(x))
	}
}

func decInts[T ~int](d *Decoder) []T {
	n := d.Count()
	var xs []T
	for i := 0; i < n && d.err == nil; i++ {
		xs = append(xs, T(d.Int()))
	}
	return xs
}

func encStrs(e *Encoder, xs []string) {
	e.U64(uint64(len(xs)))
	for _, s := range xs {
		e.Str(s)
	}
}

func decStrs(d *Decoder) []string {
	n := d.Count()
	var xs []string
	for i := 0; i < n && d.err == nil; i++ {
		xs = append(xs, d.Str())
	}
	return xs
}

func encRNGs(e *Encoder, xs []rng.State) {
	e.U64(uint64(len(xs)))
	for _, st := range xs {
		e.RNG(st)
	}
}

func decRNGs(d *Decoder) []rng.State {
	n := d.Count()
	var xs []rng.State
	for i := 0; i < n && d.err == nil; i++ {
		xs = append(xs, d.RNG())
	}
	return xs
}

// --- world ---

func encWorld(e *Encoder, st *WorldState) {
	e.RNG(st.Root)
	encSlice(e, st.NetAlloc, encAlloc)
	encPlatform(e, st.Platform)
	encGraph(e, st.Graph)
	encBehavior(e, st.Behavior)
	encHoneypots(e, st.Honeypots)
	e.Bool(st.Guard != nil)
	if st.Guard != nil {
		encGuard(e, st.Guard)
	}
	encSlice(e, st.Recip, func(e *Encoder, nr *NamedRecip) {
		e.Str(nr.Name)
		encRecip(e, nr.State)
	})
	encSlice(e, st.Coll, func(e *Encoder, nc *NamedColl) {
		e.Str(nc.Name)
		encColl(e, nc.State)
	})
	encRNGs(e, st.VPNRNGs)
	e.RNG(st.CrossRNG)
	encSlice(e, st.CrossSeen, func(e *Encoder, sc *ServiceCount) {
		e.Str(sc.Name)
		e.Int(sc.N)
	})
}

// decWorld decodes the world body. ver selects the graph list reader —
// the only section whose wire form differs between FSNAP1 and FSNAP2.
func decWorld(d *Decoder, ver uint64) *WorldState {
	st := &WorldState{}
	st.Root = d.RNG()
	st.NetAlloc = decSlice(d, decAlloc)
	st.Platform = decPlatform(d)
	st.Graph = decGraph(d, ver)
	st.Behavior = decBehavior(d)
	st.Honeypots = decHoneypots(d)
	if d.Bool() {
		st.Guard = decGuard(d)
	}
	st.Recip = decSlice(d, func(d *Decoder, nr *NamedRecip) {
		nr.Name = d.Str()
		nr.State = decRecip(d)
	})
	st.Coll = decSlice(d, func(d *Decoder, nc *NamedColl) {
		nc.Name = d.Str()
		nc.State = decColl(d)
	})
	st.VPNRNGs = decRNGs(d)
	st.CrossRNG = d.RNG()
	st.CrossSeen = decSlice(d, func(d *Decoder, sc *ServiceCount) {
		sc.Name = d.Str()
		sc.N = d.Int()
	})
	return st
}

// --- netsim ---

func encAlloc(e *Encoder, a *netsim.AllocState) {
	e.U64(uint64(a.ASN))
	e.U64(uint64(a.Next))
}

func decAlloc(d *Decoder, a *netsim.AllocState) {
	a.ASN = netsim.ASN(d.U64())
	a.Next = uint32(d.U64())
}

// --- platform ---

func encSession(e *Encoder, s *platform.SessionState) {
	e.Bool(s.Present)
	if !s.Present {
		return
	}
	e.U64(uint64(s.ID))
	e.U64(s.Epoch)
	e.Addr(s.IP)
	e.Str(s.Fingerprint)
	e.Int(int(s.API))
}

func decSession(d *Decoder, s *platform.SessionState) {
	s.Present = d.Bool()
	if !s.Present {
		return
	}
	s.ID = platform.AccountID(d.U64())
	s.Epoch = d.U64()
	s.IP = d.Addr()
	s.Fingerprint = d.Str()
	s.API = platform.APIKind(d.Int())
}

func encPlatform(e *Encoder, st *platform.State) {
	e.U64(st.NextPost)
	e.U64(st.LogSeq)
	encSlice(e, st.Accounts, func(e *Encoder, a *platform.AccountState) {
		e.U64(uint64(a.ID))
		e.Str(a.Username)
		e.Str(a.Password)
		e.Int(a.Profile.PhotoCount)
		e.Bool(a.Profile.HasProfilePic)
		e.Bool(a.Profile.HasBio)
		e.Bool(a.Profile.HasName)
		e.Str(a.HomeCountry)
		e.Time(a.Created)
		e.Bool(a.Deleted)
		e.U64(a.SessionEpoch)
		encSlice(e, a.LoginCountries, func(e *Encoder, cc *platform.CountryCount) {
			e.Str(cc.Country)
			e.Int(cc.N)
		})
		encU64s(e, a.Posts)
		encSlice(e, a.LikeCounts, func(e *Encoder, pc *platform.PostCount) {
			e.U64(uint64(pc.Post))
			e.Int(pc.N)
		})
	})
	encSlice(e, st.Limiters, func(e *Encoder, l *platform.LimiterState) {
		e.U64(uint64(l.ID))
		e.I64(l.Hour)
		e.Int(l.Count)
	})
	encSlice(e, st.Tags, func(e *Encoder, t *platform.TagState) {
		e.Str(t.Tag)
		encU64s(e, t.Posts)
	})
	encSlice(e, st.Enforcements, func(e *Encoder, en *platform.EnforcementState) {
		e.U64(uint64(en.From))
		e.U64(uint64(en.To))
		e.Time(en.Due)
	})
}

func decPlatform(d *Decoder) *platform.State {
	st := &platform.State{}
	st.NextPost = d.U64()
	st.LogSeq = d.U64()
	st.Accounts = decSlice(d, func(d *Decoder, a *platform.AccountState) {
		a.ID = platform.AccountID(d.U64())
		a.Username = d.Str()
		a.Password = d.Str()
		a.Profile.PhotoCount = d.Int()
		a.Profile.HasProfilePic = d.Bool()
		a.Profile.HasBio = d.Bool()
		a.Profile.HasName = d.Bool()
		a.HomeCountry = d.Str()
		a.Created = d.Time()
		a.Deleted = d.Bool()
		a.SessionEpoch = d.U64()
		a.LoginCountries = decSlice(d, func(d *Decoder, cc *platform.CountryCount) {
			cc.Country = d.Str()
			cc.N = d.Int()
		})
		a.Posts = decU64s[platform.PostID](d)
		a.LikeCounts = decSlice(d, func(d *Decoder, pc *platform.PostCount) {
			pc.Post = platform.PostID(d.U64())
			pc.N = d.Int()
		})
	})
	st.Limiters = decSlice(d, func(d *Decoder, l *platform.LimiterState) {
		l.ID = platform.AccountID(d.U64())
		l.Hour = d.I64()
		l.Count = d.Int()
	})
	st.Tags = decSlice(d, func(d *Decoder, t *platform.TagState) {
		t.Tag = d.Str()
		t.Posts = decU64s[platform.PostID](d)
	})
	st.Enforcements = decSlice(d, func(d *Decoder, en *platform.EnforcementState) {
		en.From = platform.AccountID(d.U64())
		en.To = platform.AccountID(d.U64())
		en.Due = d.Time()
	})
	return st
}

// --- socialgraph ---

// encGraph always writes the FSNAP2 form: the sorted followee and like
// sets go out delta-encoded. Own-post lists are creation-order, not a
// sorted contract, so they stay absolute.
func encGraph(e *Encoder, st *socialgraph.State) {
	e.U64(uint64(st.NextAcct))
	e.U64(uint64(st.NextPost))
	encSlice(e, st.Accounts, func(e *Encoder, a *socialgraph.AccountState) {
		e.U64(uint64(a.ID))
		e.Time(a.Created)
		encU64sDelta(e, a.Followees)
		encU64s(e, a.Posts)
	})
	encSlice(e, st.Posts, func(e *Encoder, p *socialgraph.PostState) {
		e.U64(uint64(p.ID))
		e.U64(uint64(p.Author))
		e.Time(p.Created)
		encU64sDelta(e, p.Likes)
		encSlice(e, p.Comments, func(e *Encoder, c *socialgraph.Comment) {
			e.U64(uint64(c.Author))
			e.Str(c.Text)
			e.Time(c.At)
		})
	})
}

func decGraph(d *Decoder, ver uint64) *socialgraph.State {
	decSorted := decU64sDelta[socialgraph.AccountID]
	if ver == VersionV1 {
		decSorted = decU64s[socialgraph.AccountID]
	}
	st := &socialgraph.State{}
	st.NextAcct = socialgraph.AccountID(d.U64())
	st.NextPost = socialgraph.PostID(d.U64())
	st.Accounts = decSlice(d, func(d *Decoder, a *socialgraph.AccountState) {
		a.ID = socialgraph.AccountID(d.U64())
		a.Created = d.Time()
		a.Followees = decSorted(d)
		a.Posts = decU64s[socialgraph.PostID](d)
	})
	st.Posts = decSlice(d, func(d *Decoder, p *socialgraph.PostState) {
		p.ID = socialgraph.PostID(d.U64())
		p.Author = socialgraph.AccountID(d.U64())
		p.Created = d.Time()
		p.Likes = decSorted(d)
		p.Comments = decSlice(d, func(d *Decoder, c *socialgraph.Comment) {
			c.Author = socialgraph.AccountID(d.U64())
			c.Text = d.Str()
			c.At = d.Time()
		})
	})
	return st
}

// --- behavior ---

func encBehavior(e *Encoder, st *behavior.State) {
	e.RNG(st.RNG)
	e.Int(st.NextName)
	encSlice(e, st.Members, func(e *Encoder, m *behavior.MemberState) {
		e.U64(uint64(m.Profile.ID))
		e.Str(m.Profile.Country)
		e.Int(m.Profile.OutDeg)
		e.Int(m.Profile.InDeg)
		e.F64(m.Profile.LikeToLike)
		e.F64(m.Profile.LikeToFollow)
		e.F64(m.Profile.FollowToFollow)
		e.Str(m.Tag)
		encSession(e, &m.Session)
		e.RNG(m.RNG)
	})
	encU64s(e, st.General)
	encSlice(e, st.Pools, func(e *Encoder, p *behavior.PoolState) {
		e.Str(p.Label)
		encU64s(e, p.IDs)
	})
	encSlice(e, st.Reacted, func(e *Encoder, cc *behavior.ChannelCount) {
		e.Str(cc.Channel)
		e.Int(cc.N)
	})
	encSlice(e, st.Reactions, func(e *Encoder, r *behavior.ReactionState) {
		e.U64(uint64(r.Member))
		e.U64(uint64(r.Actor))
		e.Int(int(r.Action))
		e.Str(r.Channel)
		e.Time(r.Due)
	})
}

func decBehavior(d *Decoder) *behavior.State {
	st := &behavior.State{}
	st.RNG = d.RNG()
	st.NextName = d.Int()
	st.Members = decSlice(d, func(d *Decoder, m *behavior.MemberState) {
		m.Profile.ID = platform.AccountID(d.U64())
		m.Profile.Country = d.Str()
		m.Profile.OutDeg = d.Int()
		m.Profile.InDeg = d.Int()
		m.Profile.LikeToLike = d.F64()
		m.Profile.LikeToFollow = d.F64()
		m.Profile.FollowToFollow = d.F64()
		m.Tag = d.Str()
		decSession(d, &m.Session)
		m.RNG = d.RNG()
	})
	st.General = decU64s[platform.AccountID](d)
	st.Pools = decSlice(d, func(d *Decoder, p *behavior.PoolState) {
		p.Label = d.Str()
		p.IDs = decU64s[platform.AccountID](d)
	})
	st.Reacted = decSlice(d, func(d *Decoder, cc *behavior.ChannelCount) {
		cc.Channel = d.Str()
		cc.N = d.Int()
	})
	st.Reactions = decSlice(d, func(d *Decoder, r *behavior.ReactionState) {
		r.Member = platform.AccountID(d.U64())
		r.Actor = platform.AccountID(d.U64())
		r.Action = platform.ActionType(d.Int())
		r.Channel = d.Str()
		r.Due = d.Time()
	})
	return st
}

// --- honeypot ---

func encTypeCounts(e *Encoder, xs []honeypot.TypeCount) {
	encSlice(e, xs, func(e *Encoder, tc *honeypot.TypeCount) {
		e.Int(int(tc.Type))
		e.Int(tc.N)
	})
}

func decTypeCounts(d *Decoder) []honeypot.TypeCount {
	return decSlice(d, func(d *Decoder, tc *honeypot.TypeCount) {
		tc.Type = platform.ActionType(d.Int())
		tc.N = d.Int()
	})
}

func encHoneypots(e *Encoder, st *honeypot.State) {
	e.RNG(st.RNG)
	e.Int(st.NextID)
	encU64s(e, st.HighProfile)
	encSlice(e, st.Accounts, func(e *Encoder, a *honeypot.AccountState) {
		e.U64(uint64(a.ID))
		e.Str(a.Username)
		e.Str(a.Password)
		e.Int(int(a.Kind))
		e.Time(a.Created)
		e.Str(a.EnrolledWith)
		encTypeCounts(e, a.Inbound)
		encTypeCounts(e, a.Outbound)
		encSlice(e, a.InboundDedup, func(e *Encoder, ac *honeypot.ActorCounts) {
			e.U64(uint64(ac.Actor))
			encTypeCounts(e, ac.Counts)
		})
		e.Int(a.Enforcements)
		e.Int(a.Duplicates)
		e.Bool(a.Deleted)
	})
}

func decHoneypots(d *Decoder) *honeypot.State {
	st := &honeypot.State{}
	st.RNG = d.RNG()
	st.NextID = d.Int()
	st.HighProfile = decU64s[platform.AccountID](d)
	st.Accounts = decSlice(d, func(d *Decoder, a *honeypot.AccountState) {
		a.ID = platform.AccountID(d.U64())
		a.Username = d.Str()
		a.Password = d.Str()
		a.Kind = honeypot.Kind(d.Int())
		a.Created = d.Time()
		a.EnrolledWith = d.Str()
		a.Inbound = decTypeCounts(d)
		a.Outbound = decTypeCounts(d)
		a.InboundDedup = decSlice(d, func(d *Decoder, ac *honeypot.ActorCounts) {
			ac.Actor = platform.AccountID(d.U64())
			ac.Counts = decTypeCounts(d)
		})
		a.Enforcements = d.Int()
		a.Duplicates = d.Int()
		a.Deleted = d.Bool()
	})
	return st
}

// --- detection ---

func encGuard(e *Encoder, st *detection.IPVolumeGuardState) {
	encSlice(e, st.Windows, func(e *Encoder, w *detection.IPWindowState) {
		e.Addr(w.IP)
		e.I64(w.Day)
		e.Int(w.N)
	})
	encSlice(e, st.Throttled, func(e *Encoder, cc *detection.ClientCount) {
		e.Str(cc.Client)
		e.Int(cc.N)
	})
}

func decGuard(d *Decoder) *detection.IPVolumeGuardState {
	st := &detection.IPVolumeGuardState{}
	st.Windows = decSlice(d, func(d *Decoder, w *detection.IPWindowState) {
		w.IP = d.Addr()
		w.Day = d.I64()
		w.N = d.Int()
	})
	st.Throttled = decSlice(d, func(d *Decoder, cc *detection.ClientCount) {
		cc.Client = d.Str()
		cc.N = d.Int()
	})
	return st
}

// --- aas ---

func encActionCounts(e *Encoder, xs []aas.ActionCount) {
	encSlice(e, xs, func(e *Encoder, ac *aas.ActionCount) {
		e.Int(int(ac.Action))
		e.Int(ac.N)
	})
}

func decActionCounts(d *Decoder) []aas.ActionCount {
	return decSlice(d, func(d *Decoder, ac *aas.ActionCount) {
		ac.Action = platform.ActionType(d.Int())
		ac.N = d.Int()
	})
}

func encCustomer(e *Encoder, c *aas.CustomerState) {
	e.U64(uint64(c.Account))
	e.Str(c.Username)
	e.Str(c.Password)
	e.Str(c.Country)
	e.Bool(c.Managed)
	encInts(e, c.Wants)
	encStrs(e, c.Hashtags)
	e.Time(c.EnrolledAt)
	e.Bool(c.LongTermIntent)
	e.Time(c.EngagedUntil)
	e.Bool(c.Churned)
	e.Time(c.PaidThrough)
	encSlice(e, c.Payments, func(e *Encoder, p *aas.Payment) {
		e.Time(p.At)
		e.F64(p.Amount)
	})
	e.Bool(c.FirstPaidBeforeStudy)
	e.Int(int(c.Product))
	e.Int(c.Tier)
	encSession(e, &c.Session)
	encSession(e, &c.OwnSession)
	encSlice(e, c.Adapt, func(e *Encoder, a *aas.AdaptState) {
		e.Int(int(a.Action))
		e.F64(a.LearnedCap)
		e.Int(a.TodayCount)
		e.Bool(a.TodayBlocked)
		e.Time(a.BlockedUntil)
		e.Int(a.ProbeWait)
	})
	encSlice(e, c.RecentFollows, func(e *Encoder, u *aas.UnfollowState) {
		e.U64(uint64(u.Target))
		e.Time(u.Due)
	})
	e.Bool(c.UnfollowAfter)
	e.Time(c.LastFreeRequest)
	encActionCounts(e, c.Totals)
	e.RNG(c.RNG)
	e.RNG(c.RelRNG)
	e.Int(c.Breaker.Fails)
	e.Bool(c.Breaker.Tripped)
	e.Time(c.Breaker.OpenUntil)
}

func decCustomer(d *Decoder, c *aas.CustomerState) {
	c.Account = platform.AccountID(d.U64())
	c.Username = d.Str()
	c.Password = d.Str()
	c.Country = d.Str()
	c.Managed = d.Bool()
	c.Wants = decInts[aas.Offering](d)
	c.Hashtags = decStrs(d)
	c.EnrolledAt = d.Time()
	c.LongTermIntent = d.Bool()
	c.EngagedUntil = d.Time()
	c.Churned = d.Bool()
	c.PaidThrough = d.Time()
	c.Payments = decSlice(d, func(d *Decoder, p *aas.Payment) {
		p.At = d.Time()
		p.Amount = d.F64()
	})
	c.FirstPaidBeforeStudy = d.Bool()
	c.Product = aas.PaidProduct(d.Int())
	c.Tier = d.Int()
	decSession(d, &c.Session)
	decSession(d, &c.OwnSession)
	c.Adapt = decSlice(d, func(d *Decoder, a *aas.AdaptState) {
		a.Action = platform.ActionType(d.Int())
		a.LearnedCap = d.F64()
		a.TodayCount = d.Int()
		a.TodayBlocked = d.Bool()
		a.BlockedUntil = d.Time()
		a.ProbeWait = d.Int()
	})
	c.RecentFollows = decSlice(d, func(d *Decoder, u *aas.UnfollowState) {
		u.Target = platform.AccountID(d.U64())
		u.Due = d.Time()
	})
	c.UnfollowAfter = d.Bool()
	c.LastFreeRequest = d.Time()
	c.Totals = decActionCounts(d)
	c.RNG = d.RNG()
	c.RelRNG = d.RNG()
	c.Breaker.Fails = d.Int()
	c.Breaker.Tripped = d.Bool()
	c.Breaker.OpenUntil = d.Time()
}

func encBase(e *Encoder, b *aas.BaseState) {
	e.RNG(b.RNG)
	encSlice(e, b.Customers, encCustomer)
	e.F64(b.Revenue)
	e.Int(b.AdImpressions)
	e.Bool(b.Stopped)
	encSlice(e, b.Retries, func(e *Encoder, r *aas.RetryState) {
		e.U64(uint64(r.Customer))
		e.Int(int(r.Action))
		e.U64(uint64(r.Target))
		e.U64(uint64(r.Post))
		e.Str(r.Text)
		encStrs(e, r.Tags)
		e.Int(r.Attempt)
		e.Time(r.Due)
	})
}

func decBase(d *Decoder, b *aas.BaseState) {
	b.RNG = d.RNG()
	b.Customers = decSlice(d, decCustomer)
	b.Revenue = d.F64()
	b.AdImpressions = d.Int()
	b.Stopped = d.Bool()
	b.Retries = decSlice(d, func(d *Decoder, r *aas.RetryState) {
		r.Customer = platform.AccountID(d.U64())
		r.Action = platform.ActionType(d.Int())
		r.Target = platform.AccountID(d.U64())
		r.Post = platform.PostID(d.U64())
		r.Text = d.Str()
		r.Tags = decStrs(d)
		r.Attempt = d.Int()
		r.Due = d.Time()
	})
}

func encRecip(e *Encoder, st *aas.ReciprocityState) {
	encBase(e, &st.Base)
	encU64s(e, st.Pool)
	encInts(e, st.AdaptTypes)
	e.Int(st.NextAcct)
	e.Bool(st.AutomationOn)
}

func decRecip(d *Decoder) *aas.ReciprocityState {
	st := &aas.ReciprocityState{}
	decBase(d, &st.Base)
	st.Pool = decU64s[platform.AccountID](d)
	st.AdaptTypes = decInts[platform.ActionType](d)
	st.NextAcct = d.Int()
	st.AutomationOn = d.Bool()
	return st
}

func encColl(e *Encoder, st *aas.CollusionState) {
	encBase(e, &st.Base)
	e.F64(st.FreeRequestsPerDay)
	e.Time(st.FirstLikeBlock)
	e.Bool(st.LikeAdaptOn)
	e.Bool(st.SalesStopped)
	e.Int(st.NextAcct)
	e.Bool(st.AutomationOn)
	encActionCounts(e, st.Delivered)
}

func decColl(d *Decoder) *aas.CollusionState {
	st := &aas.CollusionState{}
	decBase(d, &st.Base)
	st.FreeRequestsPerDay = d.F64()
	st.FirstLikeBlock = d.Time()
	st.LikeAdaptOn = d.Bool()
	st.SalesStopped = d.Bool()
	st.NextAcct = d.Int()
	st.AutomationOn = d.Bool()
	st.Delivered = decActionCounts(d)
	return st
}
