package persistence

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"footsteps/internal/aas"
	"footsteps/internal/platform"
	"footsteps/internal/rng"
)

// FuzzSnapshotRoundTrip weaves arbitrary scalars into a full world
// state — identifiers, strings, floats (NaN included), instants, RNG
// words — and checks the canonical-form round trip: decode(encode(st))
// re-encodes to the identical bytes. Comparing bytes rather than
// structs sidesteps nil-versus-empty slice noise while still proving no
// field is dropped, reordered, or misparsed.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint64(2), int64(1504224000000000000), "instalex", "#travel", 0.25, int(3))
	f.Add(uint64(0), uint64(1<<63), int64(0), "", "x", -1.5, int(-7))
	f.Add(uint64(12345), uint64(42), int64(1504224000123456789), "hub\x00laagram", "日本語", 1e308, int(1<<30))
	f.Fuzz(func(t *testing.T, a, b uint64, nanos int64, name, text string, x float64, n int) {
		// Keep instants encodable: the format stores uvarint UnixNano
		// with 0 as the zero-time sentinel, so pre-1970 instants are out
		// of range by design (the simulation epoch is 2017).
		when := time.Unix(0, nanos&(1<<62-1)).UTC()
		st := tinyWorldState()
		st.Root = rng.State{S: [4]uint64{a, b, a ^ b, a + b}, Lineage: b}
		st.Platform.NextPost = a
		st.Platform.LogSeq = b
		st.Platform.Accounts[0].ID = platform.AccountID(a)
		st.Platform.Accounts[0].Username = name
		st.Platform.Accounts[0].HomeCountry = text
		st.Platform.Accounts[0].Created = when
		st.Platform.Limiters[0].Hour = int64(n)
		st.Platform.Tags[0].Tag = text
		st.Graph.Posts[0].Comments[0].Text = text
		st.Graph.Posts[0].Comments[0].At = when
		st.Behavior.Members[0].Profile.Country = name
		st.Behavior.Members[0].Profile.LikeToLike = x
		st.Behavior.Members[0].Profile.OutDeg = n
		st.Behavior.Members[0].Session.Fingerprint = text
		st.Honeypots.Accounts[0].Username = name
		st.Honeypots.Accounts[0].Duplicates = n
		st.Guard.Throttled[0].Client = text
		st.Guard.Windows[0].Day = int64(n)
		rs := st.Recip[0].State
		rs.Base.Revenue = x
		rs.Base.Customers[0].Account = platform.AccountID(b)
		rs.Base.Customers[0].Hashtags = []string{name, text}
		rs.Base.Customers[0].Payments = []aas.Payment{{At: when, Amount: x}}
		rs.Base.Customers[0].Adapt[0].LearnedCap = x
		rs.Base.Retries[0].Text = text
		rs.Base.Retries[0].Attempt = n
		rs.Base.Retries[0].Due = when
		st.Coll[0].State.FreeRequestsPerDay = x
		st.Coll[0].Name = name
		st.CrossSeen[0].Name = name
		st.CrossSeen[0].N = n

		h := Header{Version: Version, Seed: a, Fingerprint: b, Day: n, Now: when}
		enc := EncodeBytes(h, st)
		gotH, gotSt, err := DecodeBytes(enc)
		if err != nil {
			t.Fatalf("decode of freshly encoded snapshot failed: %v", err)
		}
		if gotH.Seed != h.Seed || gotH.Fingerprint != h.Fingerprint || gotH.Day != h.Day {
			t.Fatalf("header mutated: got %+v want %+v", gotH, h)
		}
		if again := EncodeBytes(gotH, gotSt); !bytes.Equal(enc, again) {
			t.Fatalf("round trip not canonical: %d vs %d bytes", len(again), len(enc))
		}
	})
}

// FuzzDecodeNoPanic feeds arbitrary bytes to the full snapshot decoder:
// whatever the input — truncated, bit-flipped, adversarial length
// prefixes — it must return a typed error or a valid state, never panic,
// and a TruncatedError's offset must point inside the input.
func FuzzDecodeNoPanic(f *testing.F) {
	valid := EncodeBytes(tinyHeader(), tinyWorldState())
	f.Add(valid)
	// Every kind of early cut: inside the magic, the header, and the
	// body at several depths.
	for _, cut := range []int{0, 3, len(magic), len(magic) + 2, len(valid) / 4, len(valid) / 2, len(valid) - 1} {
		f.Add(valid[:cut])
	}
	// Adversarial length prefix right after a valid header.
	hdr := append([]byte(nil), valid[:len(magic)+8]...)
	f.Add(append(hdr, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f))
	f.Add([]byte("FSNAP1\n"))
	f.Add([]byte("FSNAP2\n"))
	f.Add([]byte("FSNAP1\n\x01\x2a\x00\x06\x80\x80\x01")) // legacy-version body path
	f.Add([]byte("FSEV1\nnot a snapshot"))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, st, err := DecodeBytes(data)
		if err == nil {
			// Whatever decoded cleanly must re-encode; the canonical
			// property is checked for equality only on trusted input,
			// but encoding must at least not panic on decoded output.
			_ = EncodeBytes(h, st)
			return
		}
		var te *TruncatedError
		if errors.As(err, &te) {
			if te.Offset < 0 || te.Offset > int64(len(data)) {
				t.Fatalf("truncation offset %d outside input of %d bytes", te.Offset, len(data))
			}
		}
	})
}
