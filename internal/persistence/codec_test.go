package persistence

import (
	"bytes"
	"errors"
	"net/netip"
	"testing"
	"time"

	"footsteps/internal/aas"
	"footsteps/internal/behavior"
	"footsteps/internal/detection"
	"footsteps/internal/honeypot"
	"footsteps/internal/netsim"
	"footsteps/internal/platform"
	"footsteps/internal/rng"
	"footsteps/internal/socialgraph"
)

func at(h int) time.Time {
	return time.Date(2017, time.September, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(h) * time.Hour)
}

func rngState(n uint64) rng.State {
	return rng.State{S: [4]uint64{n, n + 1, n + 2, n + 3}, Lineage: n}
}

// tinyWorldState exercises every field of every component state with
// small, distinctive values: one account with posts/likes/logins, one
// graph post with likes and a comment, one member with a live session,
// a customer per engine kind with adaptation, breaker, retry, and
// unfollow state, a honeypot with dedup counters, guard windows, and
// the world-level RNG streams and cursors.
func tinyWorldState() *WorldState {
	return &WorldState{
		Root:     rngState(1),
		NetAlloc: []netsim.AllocState{{ASN: 64496, Next: 7}, {ASN: 64512, Next: 1}},
		Platform: &platform.State{
			NextPost: 12,
			LogSeq:   345,
			Accounts: []platform.AccountState{{
				ID:       1,
				Username: "acct-1",
				Password: "pw-1",
				Profile:  platform.Profile{PhotoCount: 4, HasProfilePic: true, HasBio: true, HasName: false},

				HomeCountry:    "USA",
				Created:        at(1),
				Deleted:        false,
				SessionEpoch:   3,
				LoginCountries: []platform.CountryCount{{Country: "USA", N: 2}},
				Posts:          []platform.PostID{5, 9},
				LikeCounts:     []platform.PostCount{{Post: 5, N: 11}},
			}, {
				ID: 2, Username: "acct-2", Password: "pw-2", Deleted: true, Created: at(2),
			}},
			Limiters:     []platform.LimiterState{{ID: 1, Hour: 417912, Count: 13}},
			Tags:         []platform.TagState{{Tag: "#follow4follow", Posts: []platform.PostID{9, 5}}},
			Enforcements: []platform.EnforcementState{{From: 1, To: 2, Due: at(80)}},
		},
		Graph: &socialgraph.State{
			NextAcct: 3,
			NextPost: 10,
			Accounts: []socialgraph.AccountState{{
				ID: 1, Created: at(1), Followees: []socialgraph.AccountID{2}, Posts: []socialgraph.PostID{5},
			}, {ID: 2, Created: at(2)}},
			Posts: []socialgraph.PostState{{
				ID: 5, Author: 1, Created: at(3),
				Likes:    []socialgraph.AccountID{2},
				Comments: []socialgraph.Comment{{Author: 2, Text: "nice", At: at(4)}},
			}},
		},
		Behavior: &behavior.State{
			RNG:      rngState(2),
			NextName: 9,
			Members: []behavior.MemberState{{
				Profile: behavior.Profile{
					ID: 1, Country: "BRA", OutDeg: 3, InDeg: 5,
					LikeToLike: 0.25, LikeToFollow: 0.5, FollowToFollow: 0.125,
				},
				Tag: "#travel",
				Session: platform.SessionState{
					Present: true, ID: 1, Epoch: 3,
					IP:          netip.AddrFrom4([4]byte{10, 1, 2, 3}),
					Fingerprint: "mobile-official", API: platform.APIPrivate,
				},
				RNG: rngState(3),
			}},
			General:   []platform.AccountID{1, 2},
			Pools:     []behavior.PoolState{{Label: "instalex", IDs: []platform.AccountID{1}}},
			Reacted:   []behavior.ChannelCount{{Channel: "follow-back", N: 4}},
			Reactions: []behavior.ReactionState{{Member: 1, Actor: 2, Action: platform.ActionFollow, Channel: "follow-back", Due: at(81)}},
		},
		Honeypots: &honeypot.State{
			RNG:         rngState(4),
			NextID:      2,
			HighProfile: []platform.AccountID{2},
			Accounts: []honeypot.AccountState{{
				ID: 7, Username: "hp-0", Password: "hp-pw", Kind: honeypot.Empty,
				Created: at(5), EnrolledWith: "instalex",
				Inbound:  []honeypot.TypeCount{{Type: platform.ActionFollow, N: 6}},
				Outbound: []honeypot.TypeCount{{Type: platform.ActionLike, N: 2}},
				InboundDedup: []honeypot.ActorCounts{{
					Actor: 1, Counts: []honeypot.TypeCount{{Type: platform.ActionFollow, N: 1}},
				}},
				Enforcements: 1, Duplicates: 2, Deleted: false,
			}},
		},
		Guard: &detection.IPVolumeGuardState{
			Windows:   []detection.IPWindowState{{IP: netip.AddrFrom4([4]byte{10, 0, 0, 1}), Day: 3, N: 1999}},
			Throttled: []detection.ClientCount{{Client: "hublaagram-web", N: 12}},
		},
		Recip: []NamedRecip{{
			Name: "instalex",
			State: &aas.ReciprocityState{
				Base: aas.BaseState{
					RNG: rngState(5),
					Customers: []aas.CustomerState{{
						Account: 1, Username: "acct-1", Password: "pw-1", Country: "USA",
						Managed: true, Wants: []aas.Offering{aas.OfferFollow},
						Hashtags: []string{"#travel"}, EnrolledAt: at(6),
						LongTermIntent: true, EngagedUntil: at(90), Churned: false,
						PaidThrough: at(700), Payments: []aas.Payment{{At: at(6), Amount: 9.99}},
						FirstPaidBeforeStudy: true, Product: 1, Tier: 2,
						Session: platform.SessionState{
							Present: true, ID: 1, Epoch: 3,
							IP:          netip.AddrFrom4([4]byte{10, 9, 8, 7}),
							Fingerprint: "instalex-backend", API: platform.APIPrivate,
						},
						OwnSession: platform.SessionState{},
						Adapt: []aas.AdaptState{{
							Action: platform.ActionFollow, LearnedCap: 57.5, TodayCount: 3,
							TodayBlocked: true, BlockedUntil: at(82), ProbeWait: 2,
						}},
						RecentFollows:   []aas.UnfollowState{{Target: 2, Due: at(83)}},
						UnfollowAfter:   true,
						LastFreeRequest: at(7),
						Totals:          []aas.ActionCount{{Action: platform.ActionFollow, N: 41}},
						RNG:             rngState(6), RelRNG: rngState(7),
						Breaker: aas.BreakerState{Fails: 2, Tripped: true, OpenUntil: at(84)},
					}},
					Revenue: 129.5, AdImpressions: 77, Stopped: false,
					Retries: []aas.RetryState{{
						Customer: 1, Action: platform.ActionFollow, Target: 2, Post: 0,
						Text: "", Tags: []string{"#travel"}, Attempt: 2, Due: at(85),
					}},
				},
				Pool:         []platform.AccountID{1, 2},
				AdaptTypes:   []platform.ActionType{platform.ActionFollow, platform.ActionLike},
				NextAcct:     4,
				AutomationOn: true,
			},
		}},
		Coll: []NamedColl{{
			Name: "hublaagram",
			State: &aas.CollusionState{
				Base: aas.BaseState{
					RNG:     rngState(8),
					Revenue: 3.5,
				},
				FreeRequestsPerDay: 1.5,
				FirstLikeBlock:     at(8),
				LikeAdaptOn:        true,
				SalesStopped:       false,
				NextAcct:           5,
				AutomationOn:       true,
				Delivered:          []aas.ActionCount{{Action: platform.ActionLike, N: 1234}},
			},
		}},
		VPNRNGs:   []rng.State{rngState(9), rngState(10)},
		CrossRNG:  rngState(11),
		CrossSeen: []ServiceCount{{Name: "boostgram", N: 3}, {Name: "instalex", N: 5}},
	}
}

func tinyHeader() Header {
	return Header{Version: Version, Seed: 42, Fingerprint: 0xdeadbeef, Day: 3, Now: at(72)}
}

// TestRoundTripCanonical pins the codec's core property: decoding an
// encoded snapshot and re-encoding it reproduces the identical bytes,
// and the header comes back field for field.
func TestRoundTripCanonical(t *testing.T) {
	t.Parallel()
	h, st := tinyHeader(), tinyWorldState()
	enc := EncodeBytes(h, st)
	gotH, gotSt, err := DecodeBytes(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if gotH.Version != h.Version || gotH.Seed != h.Seed || gotH.Fingerprint != h.Fingerprint ||
		gotH.Day != h.Day || !gotH.Now.Equal(h.Now) {
		t.Errorf("header mutated in round trip:\n got %+v\nwant %+v", gotH, h)
	}
	again := EncodeBytes(gotH, gotSt)
	if !bytes.Equal(enc, again) {
		t.Errorf("re-encoded snapshot differs: %d vs %d bytes", len(again), len(enc))
	}
}

// TestEncodeViaWriter covers the io.Writer / io.Reader entry points.
func TestEncodeViaWriter(t *testing.T) {
	t.Parallel()
	h, st := tinyHeader(), tinyWorldState()
	var buf bytes.Buffer
	if err := Encode(&buf, h, st); err != nil {
		t.Fatalf("encode: %v", err)
	}
	gotH, _, err := Decode(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if gotH.Seed != h.Seed {
		t.Errorf("seed %d, want %d", gotH.Seed, h.Seed)
	}
}

func TestBadMagic(t *testing.T) {
	t.Parallel()
	for _, data := range [][]byte{nil, []byte("FS"), []byte("FSEV1\n\x01"), []byte("garbage here")} {
		if _, _, err := DecodeBytes(data); !errors.Is(err, ErrBadMagic) {
			t.Errorf("DecodeBytes(%q): want ErrBadMagic, got %v", data, err)
		}
	}
}

func TestVersionMismatch(t *testing.T) {
	t.Parallel()
	h := tinyHeader()
	h.Version = Version + 1
	enc := EncodeBytes(h, tinyWorldState())
	var mm *MismatchError
	if _, _, err := DecodeBytes(enc); !errors.As(err, &mm) {
		t.Fatalf("want MismatchError, got %v", err)
	} else if mm.Field != "format version" || mm.Got != Version+1 || mm.Want != Version {
		t.Errorf("wrong mismatch detail: %+v", mm)
	}
}

// TestDeltaList covers the FSNAP2 sorted-list codec directly: round
// trips (including duplicates and an empty list), the unsorted-writer
// panic, and the decoder's overflow rejection.
func TestDeltaList(t *testing.T) {
	t.Parallel()
	for _, xs := range [][]uint64{nil, {0}, {7}, {1, 2, 3}, {5, 5, 9}, {1, 1 << 40, 1<<63 + 1}} {
		var e Encoder
		encU64sDelta(&e, xs)
		d := NewDecoder(e.Bytes())
		got := decU64sDelta[uint64](d)
		if err := d.Done(); err != nil {
			t.Fatalf("delta decode %v: %v", xs, err)
		}
		if len(got) != len(xs) {
			t.Fatalf("delta round trip %v → %v", xs, got)
		}
		for i := range xs {
			if got[i] != xs[i] {
				t.Fatalf("delta round trip %v → %v", xs, got)
			}
		}
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Error("delta-encoding an unsorted list did not panic")
			}
		}()
		var e Encoder
		encU64sDelta(&e, []uint64{3, 1})
	}()

	var e Encoder
	e.U64(2)
	e.U64(1 << 63)
	e.U64(1 << 63) // second element wraps past MaxUint64
	d := NewDecoder(e.Bytes())
	decU64sDelta[uint64](d)
	if d.Err() == nil {
		t.Error("overflowing delta list decoded cleanly")
	}
}

// TestLegacyMagicVersionAgreement: an FSNAP1 magic with an FSNAP2
// header version (and vice versa) is a mismatch, not a silent misread.
func TestLegacyMagicVersionAgreement(t *testing.T) {
	t.Parallel()
	enc := EncodeBytes(tinyHeader(), tinyWorldState())
	relabeled := append([]byte("FSNAP1\n"), enc[7:]...)
	var mm *MismatchError
	if _, _, err := DecodeBytes(relabeled); !errors.As(err, &mm) {
		t.Fatalf("want MismatchError for v1 magic with v2 header, got %v", err)
	} else if mm.Field != "format version" || mm.Got != Version || mm.Want != VersionV1 {
		t.Errorf("wrong mismatch detail: %+v", mm)
	}
}

// TestTruncationOffsets cuts a valid snapshot at every byte boundary:
// each prefix must fail with a typed error whose offset lands inside
// the prefix — the fsevdump-style diagnostic contract — and never panic.
func TestTruncationOffsets(t *testing.T) {
	t.Parallel()
	enc := EncodeBytes(tinyHeader(), tinyWorldState())
	for cut := 0; cut < len(enc); cut++ {
		_, _, err := DecodeBytes(enc[:cut])
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded cleanly", cut, len(enc))
		}
		var te *TruncatedError
		if errors.As(err, &te) {
			if te.Offset < 0 || te.Offset > int64(cut) {
				t.Fatalf("cut=%d: offset %d outside prefix", cut, te.Offset)
			}
		} else if !errors.Is(err, ErrBadMagic) {
			t.Fatalf("cut=%d: want TruncatedError or ErrBadMagic, got %v", cut, err)
		}
	}
}

func TestTrailingGarbage(t *testing.T) {
	t.Parallel()
	enc := append(EncodeBytes(tinyHeader(), tinyWorldState()), 0xAA, 0xBB)
	var te *TruncatedError
	if _, _, err := DecodeBytes(enc); !errors.As(err, &te) {
		t.Fatalf("want TruncatedError for trailing bytes, got %v", err)
	} else if te.Offset != int64(len(enc)-2) {
		t.Errorf("trailing-garbage offset %d, want %d", te.Offset, len(enc)-2)
	}
}

// TestAllocBudgetEncode pins the checkpoint write path's allocation
// behavior: encoding must not allocate per element — only the O(log n)
// buffer growths. A thousand limiter entries therefore stay under a
// twentieth of an allocation each.
func TestAllocBudgetEncode(t *testing.T) {
	st := tinyWorldState()
	st.Platform.Limiters = make([]platform.LimiterState, 1000)
	for i := range st.Platform.Limiters {
		st.Platform.Limiters[i] = platform.LimiterState{ID: platform.AccountID(i), Hour: int64(417000 + i), Count: i % 50}
	}
	h := tinyHeader()
	got := testing.AllocsPerRun(20, func() {
		_ = EncodeBytes(h, st)
	})
	perElement := got / 1000
	if perElement > 0.05 {
		t.Errorf("EncodeBytes allocates %.1f total (%.3f per element) — a per-element allocation crept into the encode path", got, perElement)
	}
}
