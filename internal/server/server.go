package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"footsteps/internal/core"
	"footsteps/internal/telemetry"
	"footsteps/internal/wire"
)

// Serving defaults, overridable via the core.Config Serve* knobs.
const (
	DefaultQueueDepth = 8192
	DefaultPace       = 60.0 // simulated seconds per wall second
	DefaultMaxBatch   = 4096
	// pollInterval is the wall cadence at which the loop advances
	// simulated time when no ingress arrives.
	pollInterval = 5 * time.Millisecond
)

// item is one admitted envelope in flight between a handler goroutine
// and the world loop.
type item struct {
	data []byte
	done chan wire.Outcome // buffered 1; loop never blocks on it
	enq  time.Time         // wall time of admission, for the wait histogram
}

// Server runs the HTTP/WS front end and the single-writer world loop.
// Construct with New, start with Start, stop with Shutdown.
type Server struct {
	w    *core.World
	exec *Executor
	q    *core.IngestQueue[item]

	queueDepth int
	pace       float64
	maxBatch   int

	ln      net.Listener
	httpSrv *http.Server
	bcast   *broadcaster

	logw *wire.LogWriter
	logf *os.File

	// accepting gates admission; false turns every new request into a
	// typed shutting_down rejection.
	accepting atomic.Bool
	stopLoop  chan struct{}
	loopDone  chan struct{}
	sweepStop chan struct{}

	// simStart/wallStart anchor the pacing line: the target simulated
	// instant is simStart + pace·(wall − wallStart).
	simStart  time.Time
	wallStart time.Time

	// pending holds envelopes drained but deferred past a maxBatch cap.
	pending []item

	// Telemetry (all nil-safe when the world has no registry).
	mReqs        *telemetry.Counter // admitted request envelopes
	mBatch       *telemetry.Counter // /v1/batch HTTP posts
	mRejected    *telemetry.Counter // envelope-level rejections
	mOverloaded  *telemetry.Counter // queue-full rejections
	mApplied     *telemetry.Counter // envelopes applied by the loop
	mDrains      *telemetry.Counter // non-empty drain batches
	mQueueDepth  *telemetry.Gauge
	mSessions    *telemetry.Gauge
	mWSClients   *telemetry.Gauge
	mWSDropped   *telemetry.Counter
	mLatRequest  *telemetry.Histogram // /v1/request wall latency
	mLatBatch    *telemetry.Histogram // /v1/batch wall latency (whole post)
	mEnqueueWait *telemetry.Histogram // admission → drain pickup
}

// New builds a server over an already-constructed world. The world must
// not be running yet: New subscribes the event broadcaster, which must
// complete before the loop emits. Returns an error if the ingress log
// file (cfg.ServeIngressLog) cannot be created.
func New(w *core.World) (*Server, error) {
	cfg := w.Cfg
	s := &Server{
		w:          w,
		exec:       NewExecutor(w),
		queueDepth: cfg.ServeQueueDepth,
		pace:       cfg.ServePace,
		maxBatch:   cfg.ServeMaxBatch,
		stopLoop:   make(chan struct{}),
		loopDone:   make(chan struct{}),
		sweepStop:  make(chan struct{}),
	}
	if s.queueDepth <= 0 {
		s.queueDepth = DefaultQueueDepth
	}
	if s.pace <= 0 {
		s.pace = DefaultPace
	}
	if s.maxBatch <= 0 {
		s.maxBatch = DefaultMaxBatch
	}
	s.q = core.NewIngestQueue[item](s.queueDepth)
	s.bcast = newBroadcaster()
	w.Plat.Log().Subscribe(s.bcast.emit)

	if reg := cfg.Telemetry; reg != nil {
		s.mReqs = reg.Counter("server.requests")
		s.mBatch = reg.Counter("server.batch.posts")
		s.mRejected = reg.Counter("server.rejected")
		s.mOverloaded = reg.Counter("server.overloaded")
		s.mApplied = reg.Counter("server.applied")
		s.mDrains = reg.Counter("server.drains")
		s.mQueueDepth = reg.Gauge("server.queue.depth")
		s.mSessions = reg.Gauge("server.sessions")
		s.mWSClients = reg.Gauge("server.ws.clients")
		s.mWSDropped = reg.Counter("server.ws.dropped")
		s.mLatRequest = reg.Histogram("server.latency.request", telemetry.DurationBuckets)
		s.mLatBatch = reg.Histogram("server.latency.batch", telemetry.DurationBuckets)
		s.mEnqueueWait = reg.Histogram("server.enqueue.wait", telemetry.DurationBuckets)
	}
	s.bcast.dropped = s.mWSDropped
	s.bcast.clients = s.mWSClients

	if cfg.ServeIngressLog != "" {
		f, err := os.Create(cfg.ServeIngressLog)
		if err != nil {
			return nil, fmt.Errorf("server: ingress log: %w", err)
		}
		lw, err := wire.NewLogWriter(f)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("server: ingress log: %w", err)
		}
		s.logf, s.logw = f, lw
	}
	return s, nil
}

// Start listens on the configured address (cfg.ServeAddr; port 0 picks
// a free port) and launches the HTTP front end and the world loop.
func (s *Server) Start() error {
	addr := s.w.Cfg.ServeAddr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listen: %w", err)
	}
	s.ln = ln
	s.httpSrv = &http.Server{Handler: s.mux()}
	s.simStart = s.w.Sched.Clock().Now()
	s.wallStart = time.Now()
	s.accepting.Store(true)
	go s.httpSrv.Serve(ln)
	go s.loop()
	return nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// targetNow maps the current wall clock onto the pacing line. The
// result is monotone because the wall clock is.
func (s *Server) targetNow() time.Time {
	elapsed := time.Since(s.wallStart)
	return s.simStart.Add(time.Duration(float64(elapsed) * s.pace))
}

// loop is the single-writer world loop: it alternates between advancing
// simulated time along the pacing line and draining admitted ingress at
// the current target instant. Nothing else ever mutates the world while
// the loop runs.
func (s *Server) loop() {
	defer close(s.loopDone)
	ticker := time.NewTicker(pollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stopLoop:
			// Final cycles: everything still queued gets applied at the
			// stop instant, then the log is sealed. Admission is already
			// closed, so the queue can only shrink.
			t := s.targetNow()
			for {
				s.drainAt(t)
				if len(s.pending) == 0 && s.q.Len() == 0 {
					break
				}
			}
			if s.logw != nil {
				_ = s.logw.End(t.UnixNano())
				_ = s.logf.Close()
			}
			return
		case <-s.q.Ready():
		case <-ticker.C:
		}
		s.drainAt(s.targetNow())
	}
}

// drainAt advances the world to the instant t and applies at most
// maxBatch queued envelopes there. Leftovers stay in s.pending for the
// next cycle.
func (s *Server) drainAt(t time.Time) {
	s.pending = s.q.Drain(s.pending)
	s.mQueueDepth.Set(int64(len(s.pending)))
	n := len(s.pending)
	if n > s.maxBatch {
		n = s.maxBatch
	}
	batch := s.pending[:n]
	if len(batch) == 0 {
		// Nothing to apply: just keep simulated time tracking the
		// pacing line. Unlogged by design — RunUntil calls with no
		// interleaved mutation compose, so replay needs only the
		// logged instants.
		s.w.ServeTick(t, nil)
		return
	}
	now := time.Now()
	s.w.ServeTick(t, func() {
		if s.logw != nil {
			envs := make([][]byte, len(batch))
			for i := range batch {
				envs[i] = batch[i].data
			}
			_ = s.logw.Batch(t.UnixNano(), envs)
		}
		for i := range batch {
			s.mEnqueueWait.Observe(now.Sub(batch[i].enq).Nanoseconds())
			out := s.exec.Apply(batch[i].data)
			batch[i].done <- out
			batch[i] = item{}
		}
	})
	s.mApplied.Add(int64(len(batch)))
	s.mDrains.Inc()
	s.mSessions.Set(int64(s.exec.Sessions()))
	s.pending = append(s.pending[:0], s.pending[n:]...)
}

// submit admits one already-validated envelope and returns its outcome
// channel, or a typed admission error (overloaded / shutting down).
func (s *Server) submit(data []byte) (chan wire.Outcome, *wire.Error) {
	if !s.accepting.Load() {
		return nil, wire.Errf(wire.CodeShuttingDown, "server is draining")
	}
	it := item{data: data, done: make(chan wire.Outcome, 1), enq: time.Now()}
	if !s.q.TryPush(it) {
		s.mOverloaded.Inc()
		return nil, wire.Errf(wire.CodeOverloaded, "ingress queue full (%d)", s.queueDepth)
	}
	s.mReqs.Inc()
	return it.done, nil
}

// Shutdown closes admission, lets the world loop drain everything
// in flight and seal the ingress log, then stops the HTTP listener
// gracefully (bounded by ctx) and disconnects event subscribers.
func (s *Server) Shutdown(ctx context.Context) error {
	wasAccepting := s.accepting.Swap(false)
	if !wasAccepting && s.httpSrv == nil {
		return nil
	}
	close(s.stopLoop)
	select {
	case <-s.loopDone:
	case <-ctx.Done():
		return ctx.Err()
	}
	// Stragglers that raced past the accepting check after the final
	// drain never reached the world; answer them as shutting down so
	// their handlers (and http.Shutdown) can finish.
	go func() {
		reject := wire.Errf(wire.CodeShuttingDown, "server is draining")
		for {
			select {
			case <-s.sweepStop:
				return
			case <-s.q.Ready():
			case <-time.After(pollInterval):
			}
			for _, it := range s.q.Drain(nil) {
				it.done <- reject.Outcome(0)
			}
		}
	}()
	err := s.httpSrv.Shutdown(ctx)
	close(s.sweepStop)
	s.bcast.closeAll()
	if cerr := s.ln.Close(); cerr != nil && !errors.Is(cerr, net.ErrClosed) && err == nil {
		err = cerr
	}
	return err
}
