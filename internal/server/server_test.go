package server

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"footsteps/internal/core"
	"footsteps/internal/eventio"
	"footsteps/internal/telemetry"
	"footsteps/internal/wire"
)

func startServer(t *testing.T, cfg core.Config) (*Server, *core.World) {
	t.Helper()
	w := core.NewWorld(cfg)
	s, err := New(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, w
}

func postJSON(t *testing.T, url string, body []byte) (int, wire.Outcome) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out wire.Outcome
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode outcome: %v", err)
	}
	return resp.StatusCode, out
}

func TestServeHTTPRequestFlow(t *testing.T) {
	s, _ := startServer(t, tinyConfig(31))
	base := "http://" + s.Addr()

	code, out := postJSON(t, base+"/v1/request", mustJSON(t, wire.Request{V: 1, ID: 5, Op: wire.OpRegister, Username: "net-alice", Password: "pw"}))
	if code != http.StatusOK || out.Status != wire.StatusAllowed || out.ID != 5 {
		t.Fatalf("register: %d %+v", code, out)
	}
	_, login := postJSON(t, base+"/v1/request", mustJSON(t, wire.Request{V: 1, Op: wire.OpLogin, Username: "net-alice", Password: "pw"}))
	if login.Status != wire.StatusAllowed || login.Token == "" {
		t.Fatalf("login: %+v", login)
	}
	_, post := postJSON(t, base+"/v1/request", mustJSON(t, wire.Request{V: 1, Op: wire.OpPost, Token: login.Token}))
	if post.Status != wire.StatusAllowed || post.Post == 0 {
		t.Fatalf("post: %+v", post)
	}

	// Envelope-level rejection: HTTP 400 with a typed code.
	code, out = postJSON(t, base+"/v1/request", []byte(`{"v":1,"op":"warp"}`))
	if code != http.StatusBadRequest || out.Code != wire.CodeUnknownOp {
		t.Fatalf("unknown op: %d %+v", code, out)
	}
	// Unknown token: HTTP 401.
	code, out = postJSON(t, base+"/v1/request", mustJSON(t, wire.Request{V: 1, Op: wire.OpLike, Token: "nope", Post: 1}))
	if code != http.StatusUnauthorized || out.Code != wire.CodeUnknownToken {
		t.Fatalf("unknown token: %d %+v", code, out)
	}

	// Health.
	resp, err := http.Get(base + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	resp.Body.Close()
}

func TestServeBatchNDJSON(t *testing.T) {
	s, _ := startServer(t, tinyConfig(37))
	base := "http://" + s.Addr()

	var in bytes.Buffer
	in.Write(mustJSON(t, wire.Request{V: 1, ID: 1, Op: wire.OpRegister, Username: "b-1", Password: "pw"}))
	in.WriteByte('\n')
	in.Write(mustJSON(t, wire.Request{V: 1, ID: 2, Op: wire.OpLogin, Username: "b-1", Password: "pw"}))
	in.WriteByte('\n')
	in.WriteString(`{"v":1,"id":3,"op":"warp"}` + "\n") // rejected inline, order preserved
	in.Write(mustJSON(t, wire.Request{V: 1, ID: 4, Op: wire.OpRegister, Username: "b-2", Password: "pw"}))
	in.WriteByte('\n')

	resp, err := http.Post(base+"/v1/batch", "application/x-ndjson", &in)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var outs []wire.Outcome
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var out wire.Outcome
		if err := json.Unmarshal(sc.Bytes(), &out); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		outs = append(outs, out)
	}
	if len(outs) != 4 {
		t.Fatalf("got %d outcomes, want 4: %+v", len(outs), outs)
	}
	for i, want := range []uint64{1, 2, 3, 4} {
		if outs[i].ID != want {
			t.Fatalf("outcome order broken: %+v", outs)
		}
	}
	if outs[0].Status != wire.StatusAllowed || outs[1].Token == "" || outs[2].Code != wire.CodeUnknownOp || outs[3].Status != wire.StatusAllowed {
		t.Fatalf("outcomes: %+v", outs)
	}
}

func TestServeTelemetryAndMetricz(t *testing.T) {
	cfg := tinyConfig(41)
	reg := telemetry.NewRegistry()
	cfg.Telemetry = reg
	s, _ := startServer(t, cfg)
	base := "http://" + s.Addr()

	postJSON(t, base+"/v1/request", mustJSON(t, wire.Request{V: 1, Op: wire.OpRegister, Username: "m-1", Password: "pw"}))
	postJSON(t, base+"/v1/request", []byte(`{"v":1,"op":"warp"}`))

	if got := reg.Counter("server.requests").Value(); got != 1 {
		t.Errorf("server.requests = %d, want 1", got)
	}
	if got := reg.Counter("server.rejected").Value(); got != 1 {
		t.Errorf("server.rejected = %d, want 1", got)
	}
	if got := reg.Counter("server.applied").Value(); got != 1 {
		t.Errorf("server.applied = %d, want 1", got)
	}
	if reg.Histogram("server.latency.request", telemetry.DurationBuckets).Count() < 2 {
		t.Error("request latency histogram empty")
	}
	if reg.Histogram("server.enqueue.wait", telemetry.DurationBuckets).Count() < 1 {
		t.Error("enqueue wait histogram empty")
	}

	resp, err := http.Get(base + "/metricz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("metricz: %v %v", err, resp)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(body, []byte("server.requests")) {
		t.Errorf("metricz missing server rows: %s", body)
	}
}

// wsDial performs a minimal RFC 6455 client handshake and returns the
// raw connection.
func wsDial(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	req := "GET /v1/events HTTP/1.1\r\n" +
		"Host: " + addr + "\r\n" +
		"Connection: Upgrade\r\n" +
		"Upgrade: websocket\r\n" +
		"Sec-WebSocket-Key: dGhlIHNhbXBsZSBub25jZQ==\r\n" +
		"Sec-WebSocket-Version: 13\r\n\r\n"
	if _, err := conn.Write([]byte(req)); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	status, err := br.ReadString('\n')
	if err != nil || !strings.Contains(status, "101") {
		t.Fatalf("ws handshake: %q %v", status, err)
	}
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if line == "\r\n" {
			break
		}
	}
	if n := br.Buffered(); n > 0 {
		t.Fatalf("unexpected %d buffered bytes after handshake", n)
	}
	return conn
}

// readTextFrame reads one unmasked server text frame.
func readTextFrame(t *testing.T, conn net.Conn) []byte {
	t.Helper()
	hdr := make([]byte, 2)
	if _, err := io.ReadFull(conn, hdr); err != nil {
		t.Fatal(err)
	}
	if hdr[0] != 0x81 {
		t.Fatalf("frame header %#x, want FIN+text", hdr[0])
	}
	n := int(hdr[1] & 0x7f)
	switch n {
	case 126:
		ext := make([]byte, 2)
		if _, err := io.ReadFull(conn, ext); err != nil {
			t.Fatal(err)
		}
		n = int(ext[0])<<8 | int(ext[1])
	case 127:
		ext := make([]byte, 8)
		if _, err := io.ReadFull(conn, ext); err != nil {
			t.Fatal(err)
		}
		n = 0
		for _, b := range ext {
			n = n<<8 | int(b)
		}
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(conn, payload); err != nil {
		t.Fatal(err)
	}
	return payload
}

func TestServeWSEventStream(t *testing.T) {
	s, _ := startServer(t, tinyConfig(43))
	base := "http://" + s.Addr()
	conn := wsDial(t, s.Addr())
	defer conn.Close()

	postJSON(t, base+"/v1/request", mustJSON(t, wire.Request{V: 1, Op: wire.OpRegister, Username: "ws-1", Password: "pw"}))
	_, login := postJSON(t, base+"/v1/request", mustJSON(t, wire.Request{V: 1, Op: wire.OpLogin, Username: "ws-1", Password: "pw"}))
	if login.Token == "" {
		t.Fatalf("login: %+v", login)
	}

	// The login emits a platform event; the subscriber must see it as
	// wire JSON. (Organic events may arrive first; scan for ours.)
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	for i := 0; i < 10000; i++ {
		var ev wire.Event
		frame := readTextFrame(t, conn)
		if err := json.Unmarshal(frame, &ev); err != nil {
			t.Fatalf("frame %q: %v", frame, err)
		}
		if ev.Action == "login" && ev.Client == DefaultClient {
			if ev.Outcome != wire.StatusAllowed || ev.Seq == 0 {
				t.Fatalf("login event: %+v", ev)
			}
			return
		}
	}
	t.Fatal("login event never arrived on the WS stream")
}

func TestServeGracefulShutdownAndReplay(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "ingress.fing")

	cfg := tinyConfig(47)
	cfg.ServeIngressLog = logPath

	// Live run: capture the FSEV1 stream from world construction on.
	w := core.NewWorld(cfg)
	var live bytes.Buffer
	liveWriter, err := eventio.NewWriter(&live)
	if err != nil {
		t.Fatal(err)
	}
	liveWriter.Attach(w.Plat.Log())
	s, err := New(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	base := "http://" + s.Addr()

	postJSON(t, base+"/v1/request", mustJSON(t, wire.Request{V: 1, Op: wire.OpRegister, Username: "r-1", Password: "pw"}))
	_, login := postJSON(t, base+"/v1/request", mustJSON(t, wire.Request{V: 1, Op: wire.OpLogin, Username: "r-1", Password: "pw"}))
	postJSON(t, base+"/v1/request", mustJSON(t, wire.Request{V: 1, Op: wire.OpPost, Token: login.Token, Tags: []string{"tag"}}))
	var batch bytes.Buffer
	for i := 0; i < 50; i++ {
		batch.Write(mustJSON(t, wire.Request{V: 1, ID: uint64(i), Op: wire.OpRegister, Username: fmt.Sprintf("r-batch-%d", i), Password: "pw"}))
		batch.WriteByte('\n')
	}
	resp, err := http.Post(base+"/v1/batch", "application/x-ndjson", &batch)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := liveWriter.Flush(); err != nil {
		t.Fatal(err)
	}

	// After shutdown the listener is gone.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("listener still accepting after Shutdown")
	}

	// Replay: fresh world, same config, drive it from the ingress log.
	logData, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	w2 := core.NewWorld(cfg)
	var replayed bytes.Buffer
	replayWriter, err := eventio.NewWriter(&replayed)
	if err != nil {
		t.Fatal(err)
	}
	replayWriter.Attach(w2.Plat.Log())
	applied, err := ReplayIngressLog(w2, bytes.NewReader(logData))
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if applied != 53 {
		t.Errorf("replay applied %d envelopes, want 53", applied)
	}
	if err := replayWriter.Flush(); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(live.Bytes(), replayed.Bytes()) {
		t.Fatalf("FSEV1 streams diverge: live %d bytes (sha %x), replay %d bytes (sha %x)",
			live.Len(), sha256.Sum256(live.Bytes()), replayed.Len(), sha256.Sum256(replayed.Bytes()))
	}
}

func TestServeOverloadedBackpressure(t *testing.T) {
	cfg := tinyConfig(53)
	cfg.ServeQueueDepth = 1
	w := core.NewWorld(cfg)
	s, err := New(w)
	if err != nil {
		t.Fatal(err)
	}
	// Not started: the loop never drains, so the second push must fail
	// with the typed overload error.
	s.accepting.Store(true)
	if _, werr := s.submit([]byte(`{"v":1,"op":"register","username":"a","password":"b"}`)); werr != nil {
		t.Fatalf("first submit: %v", werr)
	}
	if _, werr := s.submit([]byte(`{"v":1,"op":"register","username":"c","password":"d"}`)); werr == nil || werr.Code != wire.CodeOverloaded {
		t.Fatalf("second submit: %v", werr)
	}
}
