package server

import (
	"bufio"
	"crypto/sha1"
	"encoding/base64"
	"net"
	"net/http"
	"strings"
	"sync"

	"footsteps/internal/platform"
	"footsteps/internal/telemetry"
	"footsteps/internal/wire"
)

// The event stream endpoint speaks minimal server-side RFC 6455: the
// opening handshake plus unmasked text frames out. It exists so
// external measurement clients can watch the platform's event stream
// live without linking the library; the module has no dependencies, so
// the few dozen lines of framing are hand-rolled here.

const wsGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// wsSendBuf is each subscriber's outbound buffer, in events. A slow
// consumer overflows it and loses events (counted, never blocking the
// world loop); the stream is observability, not a durability channel —
// FSEV1 capture is.
const wsSendBuf = 1024

type wsConn struct {
	conn net.Conn
	ch   chan []byte
	once sync.Once
	dead chan struct{}
}

func (c *wsConn) close() {
	c.once.Do(func() {
		close(c.dead)
		c.conn.Close()
	})
}

// broadcaster fans platform events out to WS subscribers. emit runs on
// the world loop and must never block: sends are non-blocking drops.
type broadcaster struct {
	mu      sync.Mutex
	subs    map[*wsConn]struct{}
	scratch []byte
	dropped *telemetry.Counter
	clients *telemetry.Gauge
}

func newBroadcaster() *broadcaster {
	return &broadcaster{subs: make(map[*wsConn]struct{})}
}

// emit is the platform event subscriber (wired at server construction,
// before the loop emits anything).
func (b *broadcaster) emit(ev platform.Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.subs) == 0 {
		return
	}
	b.scratch = wire.AppendEventJSON(b.scratch[:0], wire.EventFrom(ev))
	for c := range b.subs {
		// Each subscriber needs its own copy: the scratch is reused on
		// the next event, possibly before a slow writer drains.
		msg := append([]byte(nil), b.scratch...)
		select {
		case c.ch <- msg:
		default:
			b.dropped.Inc()
		}
	}
}

func (b *broadcaster) add(c *wsConn) {
	b.mu.Lock()
	b.subs[c] = struct{}{}
	n := len(b.subs)
	b.mu.Unlock()
	b.clients.Set(int64(n))
}

func (b *broadcaster) remove(c *wsConn) {
	b.mu.Lock()
	delete(b.subs, c)
	n := len(b.subs)
	b.mu.Unlock()
	b.clients.Set(int64(n))
	c.close()
}

func (b *broadcaster) closeAll() {
	b.mu.Lock()
	conns := make([]*wsConn, 0, len(b.subs))
	for c := range b.subs {
		conns = append(conns, c)
	}
	b.subs = make(map[*wsConn]struct{})
	b.mu.Unlock()
	for _, c := range conns {
		c.close()
	}
	b.clients.Set(0)
}

// handleEvents upgrades to a WebSocket and streams every platform event
// as one JSON text frame (the wire.Event schema).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	key := r.Header.Get("Sec-WebSocket-Key")
	if !headerHas(r, "Connection", "upgrade") || !headerHas(r, "Upgrade", "websocket") || key == "" {
		http.Error(w, "websocket upgrade required", http.StatusBadRequest)
		return
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		http.Error(w, "hijack unsupported", http.StatusInternalServerError)
		return
	}
	conn, brw, err := hj.Hijack()
	if err != nil {
		return
	}
	sum := sha1.Sum([]byte(key + wsGUID))
	accept := base64.StdEncoding.EncodeToString(sum[:])
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + accept + "\r\n\r\n"
	if _, err := brw.WriteString(resp); err != nil || brw.Flush() != nil {
		conn.Close()
		return
	}

	c := &wsConn{conn: conn, ch: make(chan []byte, wsSendBuf), dead: make(chan struct{})}
	s.bcast.add(c)

	// Reader: we never act on client frames, but reading until error is
	// how we notice the peer went away (close frame, RST, FIN).
	go func() {
		buf := make([]byte, 4096)
		for {
			if _, err := conn.Read(buf); err != nil {
				s.bcast.remove(c)
				return
			}
		}
	}()
	// Writer: one text frame per event.
	go func() {
		bw := bufio.NewWriter(conn)
		for {
			select {
			case <-c.dead:
				return
			case msg := <-c.ch:
				if writeTextFrame(bw, msg) != nil || bw.Flush() != nil {
					s.bcast.remove(c)
					return
				}
			}
		}
	}()
}

// headerHas reports whether the (possibly comma-separated) header
// contains want as a token, case-insensitively — e.g. Connection:
// "keep-alive, Upgrade".
func headerHas(r *http.Request, name, want string) bool {
	for _, v := range r.Header.Values(name) {
		for _, tok := range strings.Split(v, ",") {
			if strings.EqualFold(strings.TrimSpace(tok), want) {
				return true
			}
		}
	}
	return false
}

// writeTextFrame writes one unmasked server→client text frame
// (FIN set, opcode 0x1) per RFC 6455 §5.2.
func writeTextFrame(bw *bufio.Writer, payload []byte) error {
	if err := bw.WriteByte(0x81); err != nil {
		return err
	}
	n := len(payload)
	switch {
	case n < 126:
		if err := bw.WriteByte(byte(n)); err != nil {
			return err
		}
	case n < 1<<16:
		if err := bw.WriteByte(126); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(n >> 8)); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(n)); err != nil {
			return err
		}
	default:
		if err := bw.WriteByte(127); err != nil {
			return err
		}
		for shift := 56; shift >= 0; shift -= 8 {
			if err := bw.WriteByte(byte(n >> shift)); err != nil {
				return err
			}
		}
	}
	_, err := bw.Write(payload)
	return err
}
