// Package server is the network-facing serving layer: an HTTP/WS front
// end over the versioned wire API of internal/wire. Handler goroutines
// only parse, validate, and enqueue envelopes onto a bounded
// core.IngestQueue and wait for outcomes; the world loop stays the
// single writer, draining ingress at fixed simulated instants
// (World.ServeTick) so that a recorded FING1 ingress log replays to a
// byte-identical FSEV1 stream. See docs/API.md.
package server

import (
	"fmt"

	"footsteps/internal/aas"
	"footsteps/internal/core"
	"footsteps/internal/netsim"
	"footsteps/internal/platform"
	"footsteps/internal/wire"
)

// DefaultClient is the client fingerprint attached to wire logins that
// do not name one.
const DefaultClient = "wire-client"

// Executor applies admitted wire envelopes to the world. It owns the
// serving layer's only mutable state outside the world itself — the
// token → session table — and is driven exclusively from the world
// loop (live serving) or the replay loop, never concurrently.
//
// Every decision an Executor makes is a pure function of world state
// and the envelope bytes: token strings derive from a counter seeded by
// the config, default ASNs and profiles are constants, and all
// rejections an Executor can produce are state-dependent ones. That is
// the property that lets a FING1 replay reconstruct the exact session
// table of the live run.
type Executor struct {
	w        *core.World
	sessions map[string]*platform.Session
	tokenCtr uint64
	tokenKey uint64
}

// NewExecutor returns an executor for w. Token strings derive from the
// world's seed, so a live run and its replay (same config) mint
// identical tokens.
func NewExecutor(w *core.World) *Executor {
	return &Executor{
		w:        w,
		sessions: make(map[string]*platform.Session),
		tokenKey: splitmix64(w.Cfg.Seed ^ 0x5e11f00d),
	}
}

// splitmix64 is the SplitMix64 finalizer; good enough to make tokens
// non-guessy without any wall-clock or crypto input (which would break
// replay).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (e *Executor) nextToken() string {
	e.tokenCtr++
	return fmt.Sprintf("t%016x", splitmix64(e.tokenCtr^e.tokenKey))
}

// Sessions reports the live session count (exported for the server's
// queue-depth/session gauges).
func (e *Executor) Sessions() int { return len(e.sessions) }

// Apply executes one admitted envelope against the world at the current
// simulated instant and returns its outcome. data has already passed
// wire.ParseRequest at admission; Apply re-parses rather than carrying
// the struct so that replay — which has only the logged bytes — runs
// the exact same code path. A parse failure here (possible only if a
// log was hand-edited) maps to the envelope's typed error.
func (e *Executor) Apply(data []byte) wire.Outcome {
	req, werr := wire.ParseRequest(data)
	if werr != nil {
		return werr.Outcome(req.ID)
	}
	switch req.Op {
	case wire.OpRegister:
		return e.register(req)
	case wire.OpLogin:
		return e.login(req)
	default:
		return e.action(req)
	}
}

func (e *Executor) register(req wire.Request) wire.Outcome {
	country := req.Country
	if country == "" {
		country = "USA"
	}
	// Wire-registered accounts get a modest real-looking profile; the
	// abuse-detection features that matter (posting, followers) accrue
	// from behavior, not the registration stub.
	id, err := e.w.Plat.RegisterAccount(req.Username, req.Password, platform.Profile{
		PhotoCount: 1, HasProfilePic: true, HasBio: false, HasName: true,
	}, country)
	if err != nil {
		return failure(req.ID, err)
	}
	return wire.Outcome{V: wire.Version, ID: req.ID, Status: wire.StatusAllowed, Applied: true, Account: uint64(id)}
}

func (e *Executor) login(req wire.Request) wire.Outcome {
	asn := aas.ASNResUSA
	if req.ASN != 0 {
		asn = netsim.ASN(req.ASN)
		if _, ok := e.w.Reg.Info(asn); !ok {
			return wire.Outcome{V: wire.Version, ID: req.ID, Status: wire.StatusError,
				Code: wire.CodeUnknownASN, Detail: fmt.Sprintf("ASN %d is not announced", req.ASN)}
		}
	}
	client := req.Client
	if client == "" {
		client = DefaultClient
	}
	sess, err := e.w.Plat.Login(req.Username, req.Password, platform.ClientInfo{
		IP:          e.w.Reg.Allocate(asn),
		Fingerprint: client,
		API:         req.APIKind(),
	})
	if err != nil {
		return failure(req.ID, err)
	}
	tok := e.nextToken()
	e.sessions[tok] = sess
	return wire.Outcome{V: wire.Version, ID: req.ID, Status: wire.StatusAllowed, Applied: true, Token: tok}
}

func (e *Executor) action(req wire.Request) wire.Outcome {
	sess, ok := e.sessions[req.Token]
	if !ok {
		return wire.Outcome{V: wire.Version, ID: req.ID, Status: wire.StatusError,
			Code: wire.CodeUnknownToken, Detail: "no session for token"}
	}
	preq, ok := req.PlatformRequest()
	if !ok {
		// Unreachable: ParseRequest admits only mapped ops past
		// register/login. Kept as a typed failure, not a panic.
		return wire.Errf(wire.CodeInternal, "op %q has no platform mapping", req.Op).Outcome(req.ID)
	}
	resp := sess.Do(preq)
	out := wire.Outcome{
		V:       wire.Version,
		ID:      req.ID,
		Status:  wire.StatusFor(resp.Outcome),
		Applied: resp.Applied,
		Post:    uint64(resp.Post),
	}
	if resp.Err != nil {
		out.Code = wire.CodeForError(resp.Err)
		out.Detail = resp.Err.Error()
	}
	return out
}

// failure renders a platform error as a wire outcome. State-dependent
// identity failures (bad credentials, username taken, fault-injected
// unavailability) are StatusError/StatusUnavailable with their typed
// code.
func failure(id uint64, err error) wire.Outcome {
	code := wire.CodeForError(err)
	status := wire.StatusError
	if code == wire.CodeUnavailable {
		status = wire.StatusUnavailable
	}
	return wire.Outcome{V: wire.Version, ID: id, Status: status, Code: code, Detail: err.Error()}
}
