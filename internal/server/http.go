package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"time"

	"footsteps/internal/wire"
)

// maxBatchBody caps a /v1/batch request body (NDJSON). Generous: at the
// envelope cap this is still thousands of envelopes per post.
const maxBatchBody = 8 << 20

func (s *Server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/request", s.handleRequest)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/events", s.handleEvents)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metricz", s.handleMetrics)
	return mux
}

func writeOutcome(w http.ResponseWriter, out wire.Outcome) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(httpStatusFor(out))
	_ = json.NewEncoder(w).Encode(out)
}

// httpStatusFor maps a wire outcome to an HTTP status. Platform-level
// "the request was processed and refused" outcomes (blocked,
// rate-limited, failed) are 200s — the envelope was served; the refusal
// is the payload. Only envelope- and admission-level errors use HTTP
// status codes.
func httpStatusFor(out wire.Outcome) int {
	if out.Status != wire.StatusError {
		return http.StatusOK
	}
	switch out.Code {
	case wire.CodeOverloaded:
		return http.StatusTooManyRequests
	case wire.CodeShuttingDown:
		return http.StatusServiceUnavailable
	case wire.CodeTooLarge:
		return http.StatusRequestEntityTooLarge
	case wire.CodeInternal:
		return http.StatusInternalServerError
	case wire.CodeUnknownToken, wire.CodeSessionRevoked, wire.CodeBadCredentials:
		return http.StatusUnauthorized
	default:
		return http.StatusBadRequest
	}
}

// handleRequest serves one envelope per POST: parse and validate off
// the world loop, enqueue, wait for the loop's outcome.
func (s *Server) handleRequest(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { s.mLatRequest.Observe(time.Since(start).Nanoseconds()) }()

	body, err := io.ReadAll(io.LimitReader(r.Body, wire.MaxEnvelopeBytes+1))
	if err != nil {
		s.mRejected.Inc()
		writeOutcome(w, wire.Errf(wire.CodeMalformed, "read body: %v", err).Outcome(0))
		return
	}
	req, werr := wire.ParseRequest(body)
	if werr != nil {
		s.mRejected.Inc()
		writeOutcome(w, werr.Outcome(req.ID))
		return
	}
	done, werr := s.submit(body)
	if werr != nil {
		writeOutcome(w, werr.Outcome(req.ID))
		return
	}
	writeOutcome(w, <-done)
}

// handleBatch serves NDJSON: one envelope per line in, one outcome per
// line out, order preserved. All lines are admitted before any outcome
// is awaited, so a whole batch rides a single queue hand-off — this is
// the throughput path loadgen uses.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { s.mLatBatch.Observe(time.Since(start).Nanoseconds()) }()
	s.mBatch.Inc()

	w.Header().Set("Content-Type", "application/x-ndjson")
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	sc := bufio.NewScanner(io.LimitReader(r.Body, maxBatchBody))
	sc.Buffer(make([]byte, 64<<10), wire.MaxEnvelopeBytes+2)

	type slot struct {
		done chan wire.Outcome
		out  wire.Outcome // used when done is nil (rejected at admission)
	}
	var slots []slot
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		req, werr := wire.ParseRequest(line)
		if werr != nil {
			s.mRejected.Inc()
			slots = append(slots, slot{out: werr.Outcome(req.ID)})
			continue
		}
		// Scanner reuses its buffer; the queue needs a stable copy.
		data := append([]byte(nil), line...)
		done, werr := s.submit(data)
		if werr != nil {
			slots = append(slots, slot{out: werr.Outcome(req.ID)})
			continue
		}
		slots = append(slots, slot{done: done})
	}
	if err := sc.Err(); err != nil {
		s.mRejected.Inc()
		slots = append(slots, slot{out: wire.Errf(wire.CodeTooLarge, "batch line: %v", err).Outcome(0)})
	}

	enc := json.NewEncoder(bw)
	for _, sl := range slots {
		out := sl.out
		if sl.done != nil {
			out = <-sl.done
		}
		_ = enc.Encode(out)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if !s.accepting.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, "ok\n")
}

// handleMetrics serves the telemetry registry snapshot as JSON (same
// shape as the debug listener's /metrics.json).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	reg := s.w.Cfg.Telemetry
	if reg == nil {
		http.Error(w, "telemetry disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(reg.Snapshot())
}
