package server

import (
	"fmt"
	"io"
	"time"

	"footsteps/internal/core"
	"footsteps/internal/wire"
)

// ReplayIngressLog drives w through the exact ServeTick sequence a
// recorded serve run took: for each FING1 batch record, advance to the
// recorded instant and apply its envelopes through a fresh Executor;
// finish by advancing to the end-record instant. Given the same world
// config (same fingerprint, same seed), the FSEV1 stream this produces
// is byte-identical to the live run's — the property pinned by
// internal/simtest's ingress arm and the CLI smoke test.
//
// The world must be in the same pre-serve state the live run was in
// (freshly constructed, RunAll already called if the live run called
// it). Returns the number of envelopes applied.
func ReplayIngressLog(w *core.World, r io.Reader) (int, error) {
	lr, err := wire.NewLogReader(r)
	if err != nil {
		return 0, err
	}
	exec := NewExecutor(w)
	applied := 0
	var last int64
	for {
		rec, err := lr.Next()
		if err == io.EOF {
			// Well-formed logs end with an end record, which breaks the
			// loop below; plain EOF means the log was truncated, which
			// lr.Next reports as *TruncatedError. Unreachable, kept for
			// io semantics.
			return applied, nil
		}
		if err != nil {
			return applied, err
		}
		if rec.AtNanos < last {
			return applied, fmt.Errorf("server: ingress log goes backwards (%d after %d)", rec.AtNanos, last)
		}
		last = rec.AtNanos
		t := time.Unix(0, rec.AtNanos).UTC()
		if rec.End {
			w.ServeTick(t, nil)
			return applied, nil
		}
		w.ServeTick(t, func() {
			for _, env := range rec.Envelopes {
				exec.Apply(env)
				applied++
			}
		})
	}
}
