package server

import (
	"encoding/json"
	"testing"

	"footsteps/internal/core"
	"footsteps/internal/wire"
)

// tinyConfig is a world small enough for fast server tests.
func tinyConfig(seed uint64) core.Config {
	cfg := core.TestConfig()
	cfg.Seed = seed
	cfg.Days = 5
	cfg.OrganicPopulation = 60
	cfg.PoolSize = 40
	cfg.VPNUsers = 4
	cfg.GraphWrites = true
	return cfg
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestExecutorIdentityFlow(t *testing.T) {
	w := core.NewWorld(tinyConfig(11))
	exec := NewExecutor(w)

	out := exec.Apply(mustJSON(t, wire.Request{V: 1, ID: 1, Op: wire.OpRegister, Username: "wire-alice", Password: "pw"}))
	if out.Status != wire.StatusAllowed || out.Account == 0 || out.ID != 1 {
		t.Fatalf("register: %+v", out)
	}
	if dup := exec.Apply(mustJSON(t, wire.Request{V: 1, Op: wire.OpRegister, Username: "wire-alice", Password: "pw"})); dup.Code != wire.CodeUsernameTaken {
		t.Fatalf("duplicate register: %+v", dup)
	}

	if bad := exec.Apply(mustJSON(t, wire.Request{V: 1, Op: wire.OpLogin, Username: "wire-alice", Password: "wrong"})); bad.Code != wire.CodeBadCredentials {
		t.Fatalf("bad credentials: %+v", bad)
	}
	if bad := exec.Apply(mustJSON(t, wire.Request{V: 1, Op: wire.OpLogin, Username: "wire-alice", Password: "pw", ASN: 999999})); bad.Code != wire.CodeUnknownASN {
		t.Fatalf("unknown asn: %+v", bad)
	}
	login := exec.Apply(mustJSON(t, wire.Request{V: 1, ID: 2, Op: wire.OpLogin, Username: "wire-alice", Password: "pw"}))
	if login.Status != wire.StatusAllowed || login.Token == "" {
		t.Fatalf("login: %+v", login)
	}
	if exec.Sessions() != 1 {
		t.Fatalf("Sessions = %d", exec.Sessions())
	}

	// Act on the world: a post, then a self-targeted follow from a
	// second account.
	post := exec.Apply(mustJSON(t, wire.Request{V: 1, Op: wire.OpPost, Token: login.Token, Tags: []string{"l4l"}}))
	if post.Status != wire.StatusAllowed || post.Post == 0 {
		t.Fatalf("post: %+v", post)
	}

	exec.Apply(mustJSON(t, wire.Request{V: 1, Op: wire.OpRegister, Username: "wire-bob", Password: "pw"}))
	login2 := exec.Apply(mustJSON(t, wire.Request{V: 1, Op: wire.OpLogin, Username: "wire-bob", Password: "pw"}))
	if login2.Token == "" || login2.Token == login.Token {
		t.Fatalf("tokens must be distinct: %q %q", login.Token, login2.Token)
	}
	follow := exec.Apply(mustJSON(t, wire.Request{V: 1, Op: wire.OpFollow, Token: login2.Token, Target: out.Account}))
	if follow.Status != wire.StatusAllowed || !follow.Applied {
		t.Fatalf("follow: %+v", follow)
	}
	like := exec.Apply(mustJSON(t, wire.Request{V: 1, Op: wire.OpLike, Token: login2.Token, Post: post.Post}))
	if like.Status != wire.StatusAllowed {
		t.Fatalf("like: %+v", like)
	}
	// Re-like: allowed but a structural no-op.
	relike := exec.Apply(mustJSON(t, wire.Request{V: 1, Op: wire.OpLike, Token: login2.Token, Post: post.Post}))
	if relike.Status != wire.StatusAllowed || relike.Applied {
		t.Fatalf("re-like: %+v", relike)
	}

	if bad := exec.Apply(mustJSON(t, wire.Request{V: 1, Op: wire.OpLike, Token: "t-bogus", Post: post.Post})); bad.Code != wire.CodeUnknownToken {
		t.Fatalf("bogus token: %+v", bad)
	}
	if bad := exec.Apply([]byte(`{"v":9,"op":"like"}`)); bad.Code != wire.CodeBadVersion {
		t.Fatalf("bad version through Apply: %+v", bad)
	}
}

func TestExecutorTokensDeterministic(t *testing.T) {
	mint := func() []string {
		w := core.NewWorld(tinyConfig(23))
		exec := NewExecutor(w)
		exec.Apply(mustJSON(t, wire.Request{V: 1, Op: wire.OpRegister, Username: "u", Password: "p"}))
		var toks []string
		for i := 0; i < 3; i++ {
			out := exec.Apply(mustJSON(t, wire.Request{V: 1, Op: wire.OpLogin, Username: "u", Password: "p"}))
			toks = append(toks, out.Token)
		}
		return toks
	}
	a, b := mint(), mint()
	for i := range a {
		if a[i] == "" || a[i] != b[i] {
			t.Fatalf("token %d differs across identical runs: %q vs %q", i, a[i], b[i])
		}
	}
}
