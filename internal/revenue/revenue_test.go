package revenue

import (
	"math"
	"testing"

	"footsteps/internal/aas"
	"footsteps/internal/detection"
	"footsteps/internal/platform"
)

// mkService builds a synthetic ServiceActivity.
func mkService() *detection.ServiceActivity {
	return &detection.ServiceActivity{
		Label:     "Test",
		ByAccount: make(map[platform.AccountID]*detection.AccountActivity),
		Actions:   make(map[platform.ActionType]int),
		Targets:   make(map[platform.AccountID]bool),
	}
}

// addActor inserts an account active on the given days with n outbound
// follows per active day.
func addActor(svc *detection.ServiceActivity, id platform.AccountID, days []int, perDay int) *detection.AccountActivity {
	a := &detection.AccountActivity{Account: id}
	for _, d := range days {
		a.AddOutbound(d, platform.ActionFollow, perDay)
	}
	svc.ByAccount[id] = a
	return a
}

func seq(from, to int) []int {
	var out []int
	for d := from; d <= to; d++ {
		out = append(out, d)
	}
	return out
}

func TestLongTermSplit(t *testing.T) {
	t.Parallel()
	svc := mkService()
	addActor(svc, 1, seq(0, 20), 10)          // run 21 → long-term
	addActor(svc, 2, []int{0, 1, 2}, 10)      // run 3 → short
	addActor(svc, 3, []int{0, 2, 4, 6, 8}, 1) // run 1 → short (non-consecutive)

	s := LongTermSplit(svc, 7, false)
	if s.Customers != 3 || s.LongTerm != 1 || s.ShortTerm != 2 {
		t.Fatalf("split %+v", s)
	}
	// Long-term actions: 210 of 245 total.
	want := 210.0 / 245.0
	if math.Abs(s.LongActions-want) > 1e-9 {
		t.Fatalf("long actions %v, want %v", s.LongActions, want)
	}
}

func TestLongTermSplitHublaagramDefinition(t *testing.T) {
	t.Parallel()
	svc := mkService()
	addActor(svc, 1, seq(0, 4), 1) // run 5 > 4 → long under collusion rule
	s := LongTermSplit(svc, 4, true)
	if s.LongTerm != 1 {
		t.Fatalf("run of 5 days should be long-term under >4 rule: %+v", s)
	}
	if s2 := LongTermSplit(svc, 7, false); s2.LongTerm != 0 {
		t.Fatalf("run of 5 days should be short under >7 rule: %+v", s2)
	}
}

func TestEstimateReciprocityBoostgramShape(t *testing.T) {
	t.Parallel()
	// Boostgram: 3-day trial, $99/30 days.
	pricing := aas.ReciprocityPricing{TrialDays: 3, MinPaidDays: 30, CostPerPeriod: 99}
	svc := mkService()
	// Account 1: active days 0..32 → trial 0-2, paid days 3..29 within
	// window [0,30) = 27 paid days → 1 period → $99.
	addActor(svc, 1, seq(0, 32), 5)
	// Account 2: trial only (days 0..2) → never paid.
	addActor(svc, 2, seq(0, 2), 5)

	est := EstimateReciprocity(svc, pricing, 0, 30)
	if est.PaidAccounts != 1 {
		t.Fatalf("paid accounts %d", est.PaidAccounts)
	}
	if est.PaidDays != 27 {
		t.Fatalf("paid days %d", est.PaidDays)
	}
	if math.Abs(est.Monthly-99) > 1e-9 {
		t.Fatalf("monthly %v, want 99", est.Monthly)
	}
}

func TestEstimateReciprocityPerDayBilling(t *testing.T) {
	t.Parallel()
	// Instazood-style: 7-day delivered trial, $0.34/day.
	pricing := aas.ReciprocityPricing{TrialDays: 3, DeliveredTrialDays: 7, MinPaidDays: 1, CostPerPeriod: 0.34}
	svc := mkService()
	addActor(svc, 1, seq(0, 29), 5) // 30 active days, 7 trial → 23 paid
	est := EstimateReciprocity(svc, pricing, 0, 30)
	if est.PaidDays != 23 {
		t.Fatalf("paid days %d", est.PaidDays)
	}
	if math.Abs(est.Monthly-23*0.34) > 1e-9 {
		t.Fatalf("monthly %v", est.Monthly)
	}
}

func TestEstimateReciprocityWindowNormalization(t *testing.T) {
	t.Parallel()
	pricing := aas.ReciprocityPricing{TrialDays: 0, MinPaidDays: 1, CostPerPeriod: 1}
	svc := mkService()
	addActor(svc, 1, seq(0, 89), 1) // 90 paid days over 90-day window
	est := EstimateReciprocity(svc, pricing, 0, 90)
	// 90 days × $1 × (30/90) = $30/month.
	if math.Abs(est.Monthly-30) > 1e-9 {
		t.Fatalf("monthly %v, want 30", est.Monthly)
	}
	if empty := EstimateReciprocity(svc, pricing, 10, 10); empty.PaidAccounts != 0 {
		t.Fatal("empty window produced accounts")
	}
}

func hublaPricing() aas.CollusionPricing {
	return aas.SpecByName(aas.NameHublaagram).Collusion
}

func TestEstimateCollusionNoOutbound(t *testing.T) {
	t.Parallel()
	svc := mkService()
	a := addActor(svc, 1, nil, 0) // no outbound at all
	a.AddInbound(3, platform.ActionLike, 300)
	a.AddPostLikes(1, 300)

	est := EstimateCollusion(svc, hublaPricing(), 30)
	if est.NoOutboundAccounts != 1 {
		t.Fatalf("no-outbound accounts %d", est.NoOutboundAccounts)
	}
	if est.NoOutboundRevenue != 15 {
		t.Fatalf("no-outbound revenue %v", est.NoOutboundRevenue)
	}
}

func TestEstimateCollusionTiers(t *testing.T) {
	t.Parallel()
	svc := mkService()
	// Tier-1 customer (250–500): median likes/photo 375, paid-speed burst.
	a := addActor(svc, 1, nil, 0)
	a.AddOutbound(0, platform.ActionLike, 10) // also a source
	a.AddPostLikes(1, 350)
	a.AddPostLikes(2, 375)
	a.AddPostLikes(3, 400)
	a.PeakHourlyLike = 350
	a.AddInbound(0, platform.ActionLike, 1125)

	// Tier-2 customer (500–1,000): median 700.
	b := addActor(svc, 2, nil, 0)
	b.AddOutbound(0, platform.ActionLike, 5)
	b.AddPostLikes(4, 650)
	b.AddPostLikes(5, 750)
	b.PeakHourlyLike = 650
	b.AddInbound(0, platform.ActionLike, 1400)

	// Top-tier customer above the last tier's max: still binned last.
	c := addActor(svc, 3, nil, 0)
	c.AddOutbound(0, platform.ActionLike, 5)
	c.AddPostLikes(6, 5000)
	c.PeakHourlyLike = 900
	c.AddInbound(0, platform.ActionLike, 5000)

	est := EstimateCollusion(svc, hublaPricing(), 30)
	if est.TierAccounts[0] != 1 || est.TierRevenue[0] != 20 {
		t.Fatalf("tier0 %+v %v", est.TierAccounts, est.TierRevenue)
	}
	if est.TierAccounts[1] != 1 || est.TierRevenue[1] != 30 {
		t.Fatalf("tier1 %+v", est.TierAccounts)
	}
	if est.TierAccounts[3] != 1 || est.TierRevenue[3] != 70 {
		t.Fatalf("top tier %+v", est.TierAccounts)
	}
}

func TestEstimateCollusionOneTime(t *testing.T) {
	t.Parallel()
	svc := mkService()
	// One-time buyer: one photo with 2,300 likes, median across photos
	// below the lowest tier (other photos have organic-scale likes).
	a := addActor(svc, 1, nil, 0)
	a.AddOutbound(0, platform.ActionLike, 3)
	a.AddPostLikes(1, 2300)
	a.AddPostLikes(2, 20)
	a.AddPostLikes(3, 15)
	a.PeakHourlyLike = 1500
	a.AddInbound(0, platform.ActionLike, 2335)

	est := EstimateCollusion(svc, hublaPricing(), 30)
	if est.OneTimeBuyers != 1 {
		t.Fatalf("one-time buyers %d", est.OneTimeBuyers)
	}
	if est.OneTimeRevenue != 10 {
		t.Fatalf("one-time revenue %v", est.OneTimeRevenue)
	}
	if est.TierAccounts[0] != 0 {
		t.Fatal("one-time buyer also binned into a tier")
	}
}

func TestEstimateCollusionAds(t *testing.T) {
	t.Parallel()
	svc := mkService()
	// Free customer receiving exactly 5 free like requests (400 likes)
	// and 2 follow requests (80 follows) over 30 days.
	a := addActor(svc, 1, nil, 0)
	a.AddOutbound(0, platform.ActionLike, 2)
	a.PeakHourlyLike = 80
	a.AddInbound(0, platform.ActionLike, 400)
	a.AddInbound(0, platform.ActionFollow, 80)
	a.AddPostLikes(1, 400)

	est := EstimateCollusion(svc, hublaPricing(), 30)
	if est.AdImpressions != 7 {
		t.Fatalf("ad impressions %d, want 7", est.AdImpressions)
	}
	if math.Abs(est.AdRevenueLow-7.0/1000*AdCPMLow) > 1e-9 {
		t.Fatalf("ad low %v", est.AdRevenueLow)
	}
	if est.AdRevenueHigh <= est.AdRevenueLow {
		t.Fatal("CPM range inverted")
	}
	if est.MonthlyHigh < est.MonthlyLow {
		t.Fatal("totals inverted")
	}
}

func TestSplitNewVsPreexisting(t *testing.T) {
	t.Parallel()
	pricing := aas.ReciprocityPricing{TrialDays: 0, MinPaidDays: 1, CostPerPeriod: 1}
	svc := mkService()
	// Preexisting payer: active days 0..59 (paid both months).
	addActor(svc, 1, seq(0, 59), 1)
	// New payer in month 2: active 30..59 only.
	addActor(svc, 2, seq(30, 59), 1)
	// Customer who quit before month 2 contributes nothing.
	addActor(svc, 3, seq(0, 10), 1)

	s := SplitNewVsPreexisting(svc, pricing, 30)
	if math.Abs(s.NewFraction-0.5) > 1e-9 || math.Abs(s.PreexistingFraction-0.5) > 1e-9 {
		t.Fatalf("split %+v", s)
	}
	if empty := SplitNewVsPreexisting(mkService(), pricing, 30); empty.NewFraction != 0 || empty.PreexistingFraction != 0 {
		t.Fatal("empty split nonzero")
	}
}

func TestSplitCollusionNewVsPreexisting(t *testing.T) {
	t.Parallel()
	pricing := hublaPricing()
	svc := mkService()
	// Preexisting paid customer: bursts in both months.
	a := addActor(svc, 1, nil, 0)
	a.PeakHourlyLike = 500
	a.AddInbound(5, platform.ActionLike, 1000)
	a.AddInbound(35, platform.ActionLike, 1000)
	// New paid customer: burst only in month 2.
	b := addActor(svc, 2, nil, 0)
	b.PeakHourlyLike = 400
	b.AddInbound(40, platform.ActionLike, 3000)
	// Free rider: ignored.
	c := addActor(svc, 3, nil, 0)
	c.PeakHourlyLike = 80
	c.AddInbound(40, platform.ActionLike, 80)

	s := SplitCollusionNewVsPreexisting(svc, pricing, 30)
	if math.Abs(s.NewFraction-0.75) > 1e-9 {
		t.Fatalf("new fraction %v, want 0.75", s.NewFraction)
	}
}
