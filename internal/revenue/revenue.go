// Package revenue implements the §5.2 gross-revenue estimators: the
// paid-days model for reciprocity AASs (Table 8), the product-mix model
// for collusion networks (Table 9), the long-term/short-term customer
// split (Table 6), and the new-vs-preexisting revenue breakdown (Table 10).
//
// All estimators run on platform-side observations (detection.Tracker
// aggregates) — never on AAS ground truth — exactly as the paper's
// methodology requires. Engine ground-truth ledgers exist only to validate
// the estimates in tests.
package revenue

import (
	"math"

	"footsteps/internal/aas"
	"footsteps/internal/detection"
	"footsteps/internal/platform"
)

// Split is the Table 6 long-term/short-term decomposition for one service.
type Split struct {
	Customers   int
	LongTerm    int
	ShortTerm   int
	LongActions float64 // share of all actions from long-term customers
}

// LongTermSplit classifies the service's customers: long-term customers
// have a consecutive-day activity run strictly longer than minRunDays
// (7 for reciprocity AASs — longer than any trial — and 4 for Hublaagram).
//
// includeInboundOnly controls who counts as a customer at all: collusion
// networks (true) count accounts that only receive service actions (e.g.
// no-outbound buyers), while for reciprocity services (false) inbound-only
// accounts are organic targets, not customers.
func LongTermSplit(svc *detection.ServiceActivity, minRunDays int, includeInboundOnly bool) Split {
	var s Split
	var longActs, allActs int
	for _, a := range svc.ByAccount {
		acts := a.TotalOutboundAll()
		if acts == 0 {
			if !includeInboundOnly {
				continue
			}
			if a.TotalInbound(platform.ActionLike) == 0 && a.TotalInbound(platform.ActionFollow) == 0 {
				continue
			}
		}
		s.Customers++
		allActs += acts
		if a.MaxConsecutiveDays() > minRunDays {
			s.LongTerm++
			longActs += acts
		} else {
			s.ShortTerm++
		}
	}
	if allActs > 0 {
		s.LongActions = float64(longActs) / float64(allActs)
	}
	return s
}

// ReciprocityEstimate is one row of Table 8.
type ReciprocityEstimate struct {
	PaidAccounts int
	PaidDays     int     // total account-days of paid service in the window
	Monthly      float64 // revenue normalized to a 30-day month
}

// EstimateReciprocity runs the §5.2 paid-days model over [fromDay, toDay):
// an account is paid once it is active beyond its trial (measured from its
// first active day), and each paid day converts to money at the service's
// minimum-purchase granularity.
func EstimateReciprocity(svc *detection.ServiceActivity, pricing aas.ReciprocityPricing, fromDay, toDay int) ReciprocityEstimate {
	var est ReciprocityEstimate
	trial := pricing.ActualTrialDays()
	period := pricing.MinPaidDays
	if period <= 0 {
		period = 1
	}
	windowDays := toDay - fromDay
	if windowDays <= 0 {
		return est
	}
	var dayBuf []int
	for _, a := range svc.ByAccount {
		if !a.HasOutbound() {
			continue // organic target of the service, not a customer
		}
		dayBuf = a.AppendActiveDays(dayBuf[:0])
		days := dayBuf
		if len(days) == 0 {
			continue
		}
		trialEnd := days[0] + trial // trial runs from first observed activity
		paidDays := 0
		for _, d := range days {
			if d >= trialEnd && d >= fromDay && d < toDay {
				paidDays++
			}
		}
		if paidDays == 0 {
			continue
		}
		est.PaidAccounts++
		est.PaidDays += paidDays
		// Purchases come in whole periods: round the account's paid days
		// up to the period granularity.
		periods := int(math.Ceil(float64(paidDays) / float64(period)))
		est.Monthly += float64(periods) * pricing.CostPerPeriod
	}
	// Normalize to a 30-day month.
	est.Monthly *= 30 / float64(windowDays)
	return est
}

// CPM bounds for pop-under advertising across a worldwide audience (§5.2).
const (
	AdCPMLow  = 0.60
	AdCPMHigh = 4.00
)

// CollusionEstimate is the Table 9 decomposition.
type CollusionEstimate struct {
	// One-time products.
	NoOutboundAccounts int
	NoOutboundRevenue  float64 // lifetime fees collected from them

	OneTimeBuyers  int
	OneTimeRevenue float64

	// Monthly like tiers, parallel to pricing.MonthlyTiers.
	TierAccounts []int
	TierRevenue  []float64

	// Advertising.
	AdImpressions int // per month
	AdRevenueLow  float64
	AdRevenueHigh float64

	MonthlyLow  float64 // total recurring, low CPM
	MonthlyHigh float64 // total recurring, high CPM
}

// EstimateCollusion runs the §5.2 Hublaagram accounting over the tracked
// window of windowDays days:
//
//   - no-outbound buyers: accounts that only ever receive service actions;
//   - paid like customers: accounts that ever exceeded the free per-photo
//     hourly cap;
//   - of those, one-time buyers have photos above the smallest one-time
//     package while their median likes/photo stays below the lowest tier;
//   - monthly tier customers are binned by median likes/photo;
//   - ad impressions: free customers' inbound actions counted in
//     free-request quanta, one impression per request (conservative).
func EstimateCollusion(svc *detection.ServiceActivity, pricing aas.CollusionPricing, windowDays int) CollusionEstimate {
	est := CollusionEstimate{
		TierAccounts: make([]int, len(pricing.MonthlyTiers)),
		TierRevenue:  make([]float64, len(pricing.MonthlyTiers)),
	}
	if windowDays <= 0 {
		return est
	}
	lowestTierMin := math.MaxInt
	if len(pricing.MonthlyTiers) > 0 {
		lowestTierMin = pricing.MonthlyTiers[0].MinLikes
	}
	requests := 0
	for _, a := range svc.ByAccount {
		inLikes := a.TotalInbound(platform.ActionLike)
		inFollows := a.TotalInbound(platform.ActionFollow)
		outbound := a.TotalOutboundAll()
		// No-outbound buyers: inbound service actions, zero outbound.
		if outbound == 0 && (inLikes > 0 || inFollows > 0) {
			est.NoOutboundAccounts++
			est.NoOutboundRevenue += pricing.NoOutboundFee
			// They may also buy likes; fall through.
		}

		paid := pricing.FreeLikeHourlyCap > 0 && a.PeakHourlyLike > pricing.FreeLikeHourlyCap
		if paid {
			median := a.MedianLikesPerPost()
			oneTime := median < float64(lowestTierMin) && len(pricing.OneTime) > 0 &&
				a.PostsWithAtLeast(pricing.OneTime[0].Likes) > 0
			if oneTime {
				// One-time buyer: count photos at or above the smallest
				// package size.
				n := a.PostsWithAtLeast(pricing.OneTime[0].Likes)
				est.OneTimeBuyers++
				est.OneTimeRevenue += float64(n) * pricing.OneTime[0].Fee
			} else {
				// Paid-speed accounts whose median sits below the lowest
				// tier occur only in scaled-down worlds, where the source
				// pool caps delivery volume; bin them into the lowest tier
				// rather than dropping a known-paid account.
				if median < float64(lowestTierMin) && len(pricing.MonthlyTiers) > 0 {
					est.TierAccounts[0]++
					est.TierRevenue[0] += pricing.MonthlyTiers[0].MonthlyFee
					continue
				}
				for i, tier := range pricing.MonthlyTiers {
					upper := float64(tier.MaxLikes)
					if i == len(pricing.MonthlyTiers)-1 {
						upper = math.Inf(1)
					}
					if median >= float64(tier.MinLikes) && median < upper {
						est.TierAccounts[i]++
						est.TierRevenue[i] += tier.MonthlyFee
						break
					}
				}
			}
		} else {
			// Free customer: estimate ad-funded requests from delivery
			// quanta. Paying customers are conservatively excluded (§5.2).
			if pricing.FreeLikeQuantum > 0 {
				requests += inLikes / pricing.FreeLikeQuantum
			}
			if pricing.FreeFollowQuantum > 0 {
				requests += inFollows / pricing.FreeFollowQuantum
			}
		}
	}
	monthlyRequests := float64(requests) * 30 / float64(windowDays)
	est.AdImpressions = int(monthlyRequests)
	est.AdRevenueLow = monthlyRequests / 1000 * AdCPMLow
	est.AdRevenueHigh = monthlyRequests / 1000 * AdCPMHigh

	var tierTotal float64
	for _, r := range est.TierRevenue {
		tierTotal += r
	}
	recurring := tierTotal + est.OneTimeRevenue
	est.MonthlyLow = recurring + est.AdRevenueLow
	est.MonthlyHigh = recurring + est.AdRevenueHigh
	return est
}

// NewVsPreexisting is the Table 10 revenue split for one service over one
// month.
type NewVsPreexisting struct {
	NewFraction         float64
	PreexistingFraction float64
}

// SplitNewVsPreexisting attributes the month [monthStart, monthStart+30)'s
// paying customers by whether they were already paying before monthStart.
// paidDaysBefore/paidDaysDuring use the same paid-day rule as
// EstimateReciprocity; for collusion services pass paid-category activity
// via the isPaid callback instead (see SplitCollusionNewVsPreexisting).
func SplitNewVsPreexisting(svc *detection.ServiceActivity, pricing aas.ReciprocityPricing, monthStart int) NewVsPreexisting {
	trial := pricing.ActualTrialDays()
	var newRev, oldRev float64
	var dayBuf []int
	for _, a := range svc.ByAccount {
		if !a.HasOutbound() {
			continue
		}
		dayBuf = a.AppendActiveDays(dayBuf[:0])
		days := dayBuf
		if len(days) == 0 {
			continue
		}
		trialEnd := days[0] + trial
		var before, during int
		for _, d := range days {
			if d < trialEnd {
				continue
			}
			switch {
			case d < monthStart:
				before++
			case d < monthStart+30:
				during++
			}
		}
		if during == 0 {
			continue
		}
		amount := float64(during) * pricing.CostPerDay()
		if before > 0 {
			oldRev += amount
		} else {
			newRev += amount
		}
	}
	total := newRev + oldRev
	if total == 0 {
		return NewVsPreexisting{}
	}
	return NewVsPreexisting{NewFraction: newRev / total, PreexistingFraction: oldRev / total}
}

// SplitCollusionNewVsPreexisting is the Table 10 split for collusion
// networks: a customer's month revenue counts as preexisting when the
// account already showed paid-shape activity (any above-cap hour or
// opt-out purchase pattern) before monthStart. Because one-time fees are
// not observable per month, the split uses paid-delivery volume as the
// revenue proxy.
func SplitCollusionNewVsPreexisting(svc *detection.ServiceActivity, pricing aas.CollusionPricing, monthStart int) NewVsPreexisting {
	var newRev, oldRev float64
	for _, a := range svc.ByAccount {
		if pricing.FreeLikeHourlyCap <= 0 || a.PeakHourlyLike <= pricing.FreeLikeHourlyCap {
			continue
		}
		var before, during float64
		for i := range a.InboundDaily {
			dc := &a.InboundDaily[i]
			v := float64(dc.N[platform.ActionLike])
			switch d := int(dc.Day); {
			case d < monthStart:
				before += v
			case d < monthStart+30:
				during += v
			}
		}
		if during == 0 {
			continue
		}
		if before > 0 {
			oldRev += during
		} else {
			newRev += during
		}
	}
	total := newRev + oldRev
	if total == 0 {
		return NewVsPreexisting{}
	}
	return NewVsPreexisting{NewFraction: newRev / total, PreexistingFraction: oldRev / total}
}
