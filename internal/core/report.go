package core

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"footsteps/internal/aas"
	"footsteps/internal/honeypot"
	"footsteps/internal/intervention"
	"footsteps/internal/platform"
)

// table renders rows with aligned columns.
func table(header []string, rows [][]string) string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	for _, r := range rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
	return b.String()
}

func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
func usd(v float64) string { return fmt.Sprintf("$%.0f", v) }

// FormatTable1 renders the service/offering matrix from the catalog.
func FormatTable1() string {
	offerings := []aas.Offering{aas.OfferLike, aas.OfferFollow, aas.OfferComment, aas.OfferPost, aas.OfferUnfollow}
	header := []string{"Service", "Type"}
	for _, o := range offerings {
		header = append(header, o.String())
	}
	var rows [][]string
	for _, spec := range aas.Catalog() {
		row := []string{spec.Name, spec.Technique.String()}
		for _, o := range offerings {
			mark := ""
			if spec.Offers(o) {
				mark = "*"
			}
			row = append(row, mark)
		}
		rows = append(rows, row)
	}
	return "Table 1: services offered per AAS\n" + table(header, rows)
}

// FormatTable2 renders the reciprocity pricing table.
func FormatTable2() string {
	var rows [][]string
	for _, spec := range aas.Catalog() {
		if spec.Technique != aas.TechniqueReciprocity {
			continue
		}
		p := spec.Reciprocity
		rows = append(rows, []string{
			spec.Name,
			fmt.Sprintf("%d days", p.TrialDays),
			fmt.Sprintf("%d", p.MinPaidDays),
			fmt.Sprintf("$%.2f", p.CostPerPeriod),
		})
	}
	return "Table 2: reciprocity AAS trial and pricing\n" +
		table([]string{"Service", "Trial", "Min Paid Days", "Cost"}, rows)
}

// FormatTable3 renders Hublaagram's price list.
func FormatTable3() string {
	p := aas.SpecByName(aas.NameHublaagram).Collusion
	rows := [][]string{
		{"No collusion network", fmt.Sprintf("$%.0f", p.NoOutboundFee), "Life"},
	}
	for _, pkg := range p.OneTime {
		rows = append(rows, []string{
			fmt.Sprintf("%d Likes", pkg.Likes), fmt.Sprintf("$%.0f", pkg.Fee), "Immediate",
		})
	}
	for _, tier := range p.MonthlyTiers {
		rows = append(rows, []string{
			fmt.Sprintf("%d-%d Likes", tier.MinLikes, tier.MaxLikes),
			fmt.Sprintf("$%.0f", tier.MonthlyFee), "Month",
		})
	}
	return "Table 3: Hublaagram per-account costs\n" +
		table([]string{"Description", "Cost", "Duration"}, rows)
}

// FormatTable4 renders Followersgratis's payment options.
func FormatTable4() string {
	p := aas.SpecByName(aas.NameFollowersgratis).Collusion
	var rows [][]string
	for _, pkg := range p.OneTime {
		rows = append(rows, []string{
			fmt.Sprintf("%d Likes", pkg.Likes), fmt.Sprintf("$%.2f", pkg.Fee),
		})
	}
	return "Table 4: Followersgratis payment options\n" +
		table([]string{"Description", "Cost"}, rows)
}

// FormatTable5 renders a measured reciprocation table.
func FormatTable5(t *Table5) string {
	var rows [][]string
	for _, c := range t.Cells {
		kind := "E"
		if c.Kind == honeypot.LivedIn {
			kind = "L"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%s (%s)", c.Service, kind),
			c.DriveType.String() + "s",
			pct(c.InLikeRate),
			pct(c.InFollowRate),
			fmt.Sprintf("%d", c.Outbound),
		})
	}
	return "Table 5: reciprocation probability per outbound action\n" +
		table([]string{"Service", "Outbound", "In Likes", "In Follows", "N out"}, rows)
}

// FormatBusiness renders Tables 6–11 and the Figure 2–4 summaries.
func FormatBusiness(r *BusinessResults) string {
	var b strings.Builder

	labels := make([]string, 0, len(r.Table6))
	for l := range r.Table6 {
		labels = append(labels, l)
	}
	sort.Strings(labels)

	var rows [][]string
	for _, l := range labels {
		s := r.Table6[l]
		if s.Customers == 0 {
			continue
		}
		rows = append(rows, []string{
			l, fmt.Sprintf("%d", s.Customers),
			fmt.Sprintf("%d (%s)", s.LongTerm, pct(float64(s.LongTerm)/float64(s.Customers))),
			fmt.Sprintf("%d (%s)", s.ShortTerm, pct(float64(s.ShortTerm)/float64(s.Customers))),
			pct(s.LongActions),
		})
	}
	b.WriteString("Table 6: customers per AAS over the window\n")
	b.WriteString(table([]string{"Service", "Customers", "Long-term", "Short-term", "LT action share"}, rows))

	rows = rows[:0]
	for _, l := range labels {
		rows = append(rows, []string{l, pct(r.Conversion[l]), fmt.Sprintf("%+.1f%%", r.Growth[l]*100)})
	}
	b.WriteString("\n§5.1 user stability: first-month long-term conversion and long-term growth\n")
	b.WriteString(table([]string{"Service", "Conversion", "Growth"}, rows))

	rows = rows[:0]
	for _, l := range labels {
		if ss, ok := r.Stability[l]; ok && len(ss.ActivePerDay) > 0 {
			mid := ss.ActivePerDay[len(ss.ActivePerDay)/2]
			rows = append(rows, []string{
				l,
				fmt.Sprintf("%d", mid),
				fmt.Sprintf("%.2f/day", ss.MeanBirthRate()),
				fmt.Sprintf("%.2f/day", ss.MeanDeathRate()),
			})
		}
	}
	b.WriteString("\n§5.1 long-term population: mid-window actives, birth and death rates\n")
	b.WriteString(table([]string{"Service", "Active (mid)", "Births", "Deaths"}, rows))

	rows = rows[:0]
	for _, row := range r.Table7 {
		rows = append(rows, []string{row.Label, row.OperatingCountry, strings.Join(dedupStrings(row.ASNCountries), ", ")})
	}
	b.WriteString("\nTable 7: operating country and ASN locations\n")
	b.WriteString(table([]string{"Service", "Operating Country", "ASN Location"}, rows))

	b.WriteString("\nFigure 2: customer account locations by country\n")
	for _, l := range labels {
		shares := r.Figure2[l]
		parts := make([]string, 0, len(shares))
		for _, s := range shares {
			parts = append(parts, fmt.Sprintf("%s %s", s.Country, pct(s.Fraction)))
		}
		fmt.Fprintf(&b, "  %-12s %s\n", l, strings.Join(parts, " | "))
	}

	rows = [][]string{
		{"Boostgram", fmt.Sprintf("%d", r.Table8Boostgram.PaidAccounts), "$99/month", usd(r.Table8Boostgram.Monthly)},
		{"Insta* (Low)", fmt.Sprintf("%d", r.Table8InstaLow.PaidAccounts), "$0.34/day", usd(r.Table8InstaLow.Monthly)},
		{"Insta* (High)", fmt.Sprintf("%d", r.Table8InstaHigh.PaidAccounts), "$3.15/week", usd(r.Table8InstaHigh.Monthly)},
	}
	b.WriteString("\nTable 8: estimated monthly gross revenue, reciprocity AASs\n")
	b.WriteString(table([]string{"Service", "Paid Accounts", "Fee", "Monthly Revenue"}, rows))

	t9 := r.Table9
	rows = [][]string{
		{"No outbound", fmt.Sprintf("%d", t9.NoOutboundAccounts), "$15 once", usd(t9.NoOutboundRevenue)},
		{"One-time likes", fmt.Sprintf("%d", t9.OneTimeBuyers), "$10+", usd(t9.OneTimeRevenue)},
	}
	pricing := aas.SpecByName(aas.NameHublaagram).Collusion
	for i, tier := range pricing.MonthlyTiers {
		if i < len(t9.TierAccounts) {
			rows = append(rows, []string{
				fmt.Sprintf("%d-%d likes/photo", tier.MinLikes, tier.MaxLikes),
				fmt.Sprintf("%d", t9.TierAccounts[i]),
				fmt.Sprintf("$%.0f/month", tier.MonthlyFee),
				usd(t9.TierRevenue[i]),
			})
		}
	}
	rows = append(rows,
		[]string{"Ads (low CPM)", fmt.Sprintf("%d impressions", t9.AdImpressions), "$0.60 CPM", usd(t9.AdRevenueLow)},
		[]string{"Ads (high CPM)", "", "$4.00 CPM", usd(t9.AdRevenueHigh)},
		[]string{"TOTAL monthly", "", "", fmt.Sprintf("%s – %s", usd(t9.MonthlyLow), usd(t9.MonthlyHigh))},
	)
	b.WriteString("\nTable 9: Hublaagram gross revenue estimate\n")
	b.WriteString(table([]string{"Product", "Accounts", "Fee", "Revenue"}, rows))

	rows = rows[:0]
	for _, l := range labels {
		if s, ok := r.Table10[l]; ok {
			rows = append(rows, []string{l, pct(s.NewFraction), pct(s.PreexistingFraction)})
		}
	}
	b.WriteString("\nTable 10: revenue from new vs preexisting paying customers\n")
	b.WriteString(table([]string{"Service", "New", "Preexisting"}, rows))

	types := []platform.ActionType{platform.ActionLike, platform.ActionFollow, platform.ActionComment, platform.ActionUnfollow}
	header := []string{"Service"}
	for _, t := range types {
		header = append(header, t.String()+"s")
	}
	rows = rows[:0]
	for _, l := range labels {
		mix := r.Table11[l]
		row := []string{l}
		for _, t := range types {
			row = append(row, pct(mix[t]))
		}
		rows = append(rows, row)
	}
	b.WriteString("\nTable 11: action mix per AAS\n")
	b.WriteString(table(header, rows))

	fmt.Fprintf(&b, "\n§5.1 multi-service overlap: %d in all three, %d in two reciprocity AASs, %d in a reciprocity AAS plus Hublaagram\n",
		r.Overlap.AllThree, r.Overlap.TwoReciprocity, r.Overlap.RecipAndCollusion)

	b.WriteString("\nFigures 3/4: degree medians of targeted vs random accounts\n")
	figLabels := make([]string, 0, len(r.Figure3))
	for l := range r.Figure3 {
		figLabels = append(figLabels, l)
	}
	sort.Strings(figLabels)
	rows = rows[:0]
	for _, l := range figLabels {
		rows = append(rows, []string{
			l,
			fmt.Sprintf("%.0f", r.Figure3[l].Median()),
			fmt.Sprintf("%.0f", r.Figure4[l].Median()),
		})
	}
	b.WriteString(table([]string{"Sample", "Median following (F3)", "Median followers (F4)"}, rows))

	return b.String()
}

// FormatIntervention renders Figures 5–7 as day series.
func FormatIntervention(r *InterventionResults) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: Boostgram median follows/user/day (threshold %.0f)\n", r.Figure5.Threshold)
	fmt.Fprintf(&b, "%-5s %10s %10s %10s\n", "day", "block", "delay", "control")
	for d := 0; d < r.Figure5.Days; d++ {
		fmt.Fprintf(&b, "%-5d %10s %10s %10s\n", d,
			seriesCell(r.Figure5.Block, d), seriesCell(r.Figure5.Delay, d), seriesCell(r.Figure5.Control, d))
	}

	writeElig := func(title string, s EligibilitySeries) {
		fmt.Fprintf(&b, "\n%s\n", title)
		fmt.Fprintf(&b, "%-5s %10s %10s %10s\n", "day", "block", "delay", "control")
		for d := 0; d < s.Days; d++ {
			fmt.Fprintf(&b, "%-5d %10s %10s %10s\n", d,
				seriesCell(s.Arms[intervention.AssignBlock], d),
				seriesCell(s.Arms[intervention.AssignDelay], d),
				seriesCell(s.Arms[intervention.AssignControl], d))
		}
	}
	writeElig("Figure 6: Hublaagram daily likes eligible for countermeasure", r.Figure6)
	writeElig("Figure 7: Boostgram daily follows eligible for countermeasure", r.Figure7)
	fmt.Fprintf(&b, "\nBenign actions touched over the experiment: %d\n", r.BenignTouched)
	fmt.Fprintf(&b, "Customer complaints to their AAS: %d from the block arm, %d from the delay arm, %d control\n",
		r.Complaints[intervention.AssignBlock], r.Complaints[intervention.AssignDelay],
		r.Complaints[intervention.AssignControl])
	fmt.Fprintf(&b, "Benign-user appeals to the platform: %d\n", r.PlatformComplaints)
	return b.String()
}

func seriesCell(s DailySeries, d int) string {
	if d >= len(s.Seen) || !s.Seen[d] {
		return "-"
	}
	return fmt.Sprintf("%.2f", s.Values[d])
}

func dedupStrings(xs []string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// FormatRevenueSummary prints the headline §5 finding: combined monthly
// revenue across services.
func FormatRevenueSummary(r *BusinessResults) string {
	total := r.Table8Boostgram.Monthly +
		(r.Table8InstaLow.Monthly+r.Table8InstaHigh.Monthly)/2 +
		(r.Table9.MonthlyLow+r.Table9.MonthlyHigh)/2
	return fmt.Sprintf("Combined estimated monthly gross revenue (mid-range): %s\n", usd(total))
}
