package core

import (
	"sync"
	"time"
)

// IngestQueue is the bounded MPSC hand-off between network handler
// goroutines and the single-writer world loop. Any number of producers
// TryPush concurrently; exactly one consumer drains. The queue is the
// only structure both sides touch — handlers never see world state, the
// loop never sees sockets — which is what keeps the serving layer's
// determinism argument small (see docs/API.md).
//
// The queue is deliberately lossy under pressure: TryPush fails
// immediately when full rather than blocking, so overload turns into an
// explicit wire-level "overloaded" outcome instead of unbounded handler
// goroutines queueing behind a slow tick.
type IngestQueue[T any] struct {
	mu    sync.Mutex
	buf   []T // ring
	head  int
	n     int
	ready chan struct{} // cap 1: set when the queue may be non-empty
}

// NewIngestQueue returns a queue holding at most capacity items.
func NewIngestQueue[T any](capacity int) *IngestQueue[T] {
	if capacity <= 0 {
		capacity = 1
	}
	return &IngestQueue[T]{
		buf:   make([]T, capacity),
		ready: make(chan struct{}, 1),
	}
}

// TryPush enqueues v, returning false (without blocking) if the queue
// is full. Safe for concurrent use.
func (q *IngestQueue[T]) TryPush(v T) bool {
	q.mu.Lock()
	if q.n == len(q.buf) {
		q.mu.Unlock()
		return false
	}
	q.buf[(q.head+q.n)%len(q.buf)] = v
	q.n++
	q.mu.Unlock()
	select {
	case q.ready <- struct{}{}:
	default:
	}
	return true
}

// Drain appends every queued item to into (which may be nil) in
// admission order, empties the queue, and returns the extended slice.
// Single consumer only.
func (q *IngestQueue[T]) Drain(into []T) []T {
	q.mu.Lock()
	for i := 0; i < q.n; i++ {
		into = append(into, q.buf[(q.head+i)%len(q.buf)])
		q.buf[(q.head+i)%len(q.buf)] = *new(T) // drop references for GC
	}
	q.head = 0
	q.n = 0
	q.mu.Unlock()
	return into
}

// Len reports the queued item count.
func (q *IngestQueue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// Cap reports the queue capacity.
func (q *IngestQueue[T]) Cap() int { return len(q.buf) }

// Ready returns a channel that receives after a push may have made the
// queue non-empty. It is a wake-up hint, not a count: after waking, the
// consumer drains whatever is there (possibly nothing — a prior drain
// may have raced the signal). The consumer must tolerate both spurious
// wake-ups and batched ones.
func (q *IngestQueue[T]) Ready() <-chan struct{} { return q.ready }

// ServeTick advances the world to the simulated instant t, then invokes
// drain (if non-nil) to apply queued network ingress at exactly t. This
// is the serving layer's fixed drain point: all organic and AAS events
// scheduled at or before t fire first, then ingress lands, and nothing
// else can interleave because the world loop is the only writer.
//
// The determinism contract: a run is fully described by its sequence of
// ServeTick calls that applied at least one mutation, because
// Sched.RunUntil calls with no interleaved mutation compose —
// RunUntil(t1); RunUntil(t2) ≡ RunUntil(t2) for t1 ≤ t2. The FING1
// ingress log records exactly those (t, batch) pairs plus the final
// instant, so replaying it through the same ServeTick calls reproduces
// the FSEV1 stream byte for byte (see docs/API.md).
//
// t must not precede the current simulated time; RunUntil enforces the
// scheduler's monotonicity already (an earlier t runs nothing and
// leaves the clock untouched, which would desynchronize drain instants
// between the live run and its replay).
func (w *World) ServeTick(t time.Time, drain func()) {
	w.Sched.RunUntil(t)
	if drain != nil {
		drain()
	}
}
