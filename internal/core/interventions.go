package core

import (
	"fmt"
	"time"

	"footsteps/internal/aas"
	"footsteps/internal/clock"
	"footsteps/internal/detection"
	"footsteps/internal/intervention"
	"footsteps/internal/platform"
	"footsteps/internal/stats"
)

// DailySeries is one plotted line: a value per experiment day (NaN-free;
// days with no data carry zero and a false mask entry).
type DailySeries struct {
	Values []float64
	Seen   []bool
}

func newDailySeries(days int) DailySeries {
	return DailySeries{Values: make([]float64, days), Seen: make([]bool, days)}
}

// Figure5Data carries the narrow experiment's Boostgram follow dynamics:
// the median follows per participating user per day in each arm, plus the
// countermeasure threshold.
type Figure5Data struct {
	Days      int
	Threshold float64
	Block     DailySeries
	Delay     DailySeries
	Control   DailySeries
}

// EligibilitySeries carries a per-day eligible-action fraction for one
// experiment arm (Figures 6 and 7).
type EligibilitySeries struct {
	Days int
	Arms map[intervention.Assignment]DailySeries
}

// InterventionResults bundles a §6 experiment.
type InterventionResults struct {
	Thresholds detection.Thresholds
	Controller *intervention.Controller
	Tracker    *detection.Tracker

	// Figure5: Boostgram median follows/user/day (narrow experiment).
	Figure5 Figure5Data
	// Figure6: Hublaagram daily likes eligible for countermeasures.
	Figure6 EligibilitySeries
	// Figure7: Boostgram daily follows eligible (broad experiment).
	Figure7 EligibilitySeries

	// BenignTouched counts benign actions hit by countermeasures over the
	// whole experiment (the §6.2 false-positive budget).
	BenignTouched  int
	ExperimentDays int

	// Complaints models §6.2's observation channels: customers whose
	// service visibly fails (synchronous blocks) complain loudly to their
	// AAS; customers whose bought follows quietly vanish a day later
	// rarely notice. PlatformComplaints counts benign users appealing
	// false positives to the platform.
	Complaints         map[intervention.Assignment]int
	PlatformComplaints int
}

// experiment bins (fixed, arbitrary but deterministic).
const (
	blockBin   = 0
	delayBin   = 1
	controlBin = 2
)

// NarrowIntervention reproduces §6.3: after calibDays of threshold
// calibration with all services live, countermeasures run for weeks weeks
// against one block bin and one delay bin (≈10% of customers each), with a
// control bin observed untouched. Run it on a fresh world; the world's
// cfg.Days must cover calibDays + 7*weeks + 2 warmup days.
func (w *World) NarrowIntervention(calibDays, weeks int) (*InterventionResults, error) {
	return w.runIntervention(calibDays, weeks*7,
		intervention.NarrowPolicy(blockBin, delayBin, controlBin))
}

// BroadIntervention reproduces §6.4: delay for the first switchDay days,
// then block, applied to 90% of accounts with one control bin.
func (w *World) BroadIntervention(calibDays, days, switchDay int) (*InterventionResults, error) {
	return w.runIntervention(calibDays, days,
		intervention.BroadPolicy(controlBin, switchDay))
}

func (w *World) runIntervention(calibDays, expDays int, policy intervention.Policy) (*InterventionResults, error) {
	const warmup = 2
	if w.Cfg.Days < warmup+calibDays+expDays {
		return nil, fmt.Errorf("core: world window of %d days cannot cover %d experiment days",
			w.Cfg.Days, warmup+calibDays+expDays)
	}
	classifier, err := w.TrainClassifier(warmup)
	if err != nil {
		return nil, err
	}
	tracker := detection.NewTracker(classifier, w.Plat.Now())
	tracker.WireTelemetry(w.Cfg.Telemetry)
	w.Plat.Log().Subscribe(tracker.Observe)

	// Complaint model inputs: per-account visible failures.
	blockedSeen := make(map[platform.AccountID]int)   // AAS customers
	removedSeen := make(map[platform.AccountID]int)   // enforcement removals
	benignBlocked := make(map[platform.AccountID]int) // false positives
	w.Plat.Log().Subscribe(func(ev platform.Event) {
		switch {
		case ev.Enforcement && ev.Type == platform.ActionUnfollow:
			removedSeen[ev.Actor]++
		case ev.Outcome == platform.OutcomeBlocked:
			if _, isAAS := classifier.Classify(ev); isAAS {
				blockedSeen[ev.Actor]++
			} else {
				benignBlocked[ev.Actor]++
			}
		}
	})

	// Calibration phase: services run, calibrator samples daily activity.
	cal := detection.NewCalibrator(classifier.Classify)
	w.Plat.Log().Subscribe(cal.Observe)
	w.Sched.EveryDay(23*time.Hour+55*time.Minute, calibDays, func(int) { cal.EndDay() })

	w.RunAll()
	w.Sched.RunFor(time.Duration(calibDays) * clock.Day)

	thresholds := cal.Compute()

	// Experiment phase: install the controller and run.
	expStart := w.Plat.Now()
	ctl := intervention.New(thresholds, classifier.Classify, policy, expStart, 24*time.Hour)
	ctl.WireTelemetry(w.Cfg.Telemetry)
	ctl.WireTrace(w.Cfg.Trace)
	w.SetExperimentGatekeeper(ctl)
	w.Sched.RunFor(time.Duration(expDays) * clock.Day)
	w.SetExperimentGatekeeper(nil)

	res := &InterventionResults{
		Thresholds:     thresholds,
		Controller:     ctl,
		Tracker:        tracker,
		BenignTouched:  ctl.BenignTouched(),
		ExperimentDays: expDays,
	}
	res.Figure5 = w.figure5(tracker, thresholds, calibDays, expDays)
	res.Figure6 = eligibilitySeries(ctl, aas.NameHublaagram, platform.ActionLike, expDays)
	res.Figure7 = eligibilitySeries(ctl, aas.NameBoostgram, platform.ActionFollow, expDays)
	res.Complaints = w.complaintModel(policy, expDays, blockedSeen, removedSeen)
	for _, n := range benignBlocked {
		if n >= 3 {
			res.PlatformComplaints++ // a handful of appeals (§6.2)
		}
	}
	return res, nil
}

// complaintModel converts visible failures into customer complaints.
// Synchronous blocks are loud: the customer's dashboard shows failed
// actions, so sustained blocking almost always draws a complaint. The
// deferred removal is quiet: the only symptom is a follower count that
// sags a day later, which few customers connect to the service.
func (w *World) complaintModel(policy intervention.Policy, expDays int, blockedSeen, removedSeen map[platform.AccountID]int) map[intervention.Assignment]int {
	r := w.RNG.Split("complaints")
	out := make(map[intervention.Assignment]int)
	lastDay := expDays - 1
	if lastDay < 0 {
		lastDay = 0
	}
	for id, n := range blockedSeen {
		if n < 10 {
			continue
		}
		arm := policy(lastDay, intervention.BinOf(id))
		if r.Bool(0.7) {
			out[arm]++
		}
	}
	for id, n := range removedSeen {
		if n < 10 {
			continue
		}
		arm := policy(lastDay, intervention.BinOf(id))
		if r.Bool(0.05) {
			out[arm]++
		}
	}
	return out
}

// figure5 computes median follows per participating Boostgram account per
// day, per experiment arm.
func (w *World) figure5(tracker *detection.Tracker, th detection.Thresholds, calibDays, expDays int) Figure5Data {
	fig := Figure5Data{
		Days:    expDays,
		Block:   newDailySeries(expDays),
		Delay:   newDailySeries(expDays),
		Control: newDailySeries(expDays),
	}
	if v, ok := th.Lookup(aas.ASNBoostgramDC, platform.ActionFollow); ok {
		fig.Threshold = v
	}
	svc := tracker.Service(aas.NameBoostgram)
	if svc == nil {
		return fig
	}
	for d := 0; d < expDays; d++ {
		trackerDay := warmupless(calibDays) + d
		var block, delay, control []int
		for id, a := range svc.ByAccount {
			if !a.HasOutbound() {
				continue
			}
			n := a.OutboundOnDay(trackerDay, platform.ActionFollow)
			if n == 0 {
				continue
			}
			switch intervention.BinOf(id) {
			case blockBin:
				block = append(block, n)
			case delayBin:
				delay = append(delay, n)
			case controlBin:
				control = append(control, n)
			}
		}
		set := func(s *DailySeries, vals []int) {
			if len(vals) == 0 {
				return
			}
			s.Values[d] = stats.MedianInts(vals)
			s.Seen[d] = true
		}
		set(&fig.Block, block)
		set(&fig.Delay, delay)
		set(&fig.Control, control)
	}
	return fig
}

// warmupless maps an experiment day offset to the tracker's day index:
// the tracker starts after warmup, then calibDays precede the experiment.
func warmupless(calibDays int) int { return calibDays }

func eligibilitySeries(ctl *intervention.Controller, label string, typ platform.ActionType, days int) EligibilitySeries {
	out := EligibilitySeries{Days: days, Arms: make(map[intervention.Assignment]DailySeries)}
	for _, arm := range []intervention.Assignment{
		intervention.AssignBlock, intervention.AssignDelay, intervention.AssignControl,
	} {
		s := newDailySeries(days)
		for d := 0; d < days; d++ {
			if frac, ok := ctl.EligibleFraction(d, label, typ, arm); ok {
				s.Values[d] = frac
				s.Seen[d] = true
			}
		}
		out.Arms[arm] = s
	}
	return out
}
