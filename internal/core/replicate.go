package core

import (
	"fmt"
	"math"
	"sort"

	"footsteps/internal/honeypot"
	"footsteps/internal/platform"
)

// Replication holds a metric set measured across independent seeds — the
// repository's answer to "is that number luck?". Every run uses a fresh
// world differing only in Config.Seed.
type Replication struct {
	Seeds   []uint64
	Metrics map[string][]float64 // metric name → one value per seed
}

// Summary returns the mean and sample standard deviation of a metric.
func (r *Replication) Summary(metric string) (mean, stddev float64, ok bool) {
	vals := r.Metrics[metric]
	if len(vals) == 0 {
		return 0, 0, false
	}
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	if len(vals) > 1 {
		var ss float64
		for _, v := range vals {
			ss += (v - mean) * (v - mean)
		}
		stddev = math.Sqrt(ss / float64(len(vals)-1))
	}
	return mean, stddev, true
}

// MetricNames returns the measured metric names, sorted.
func (r *Replication) MetricNames() []string {
	out := make([]string, 0, len(r.Metrics))
	for m := range r.Metrics {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Format renders mean ± stddev rows.
func (r *Replication) Format() string {
	var b []byte
	b = append(b, fmt.Sprintf("replication across %d seeds\n", len(r.Seeds))...)
	for _, m := range r.MetricNames() {
		mean, std, _ := r.Summary(m)
		b = append(b, fmt.Sprintf("  %-40s %8.4f ± %.4f\n", m, mean, std)...)
	}
	return string(b)
}

// Replicate builds one fresh world per seed and folds the metrics the run
// callback extracts from it.
func Replicate(base Config, seeds []uint64, run func(w *World) (map[string]float64, error)) (*Replication, error) {
	rep := &Replication{Metrics: make(map[string][]float64)}
	for _, seed := range seeds {
		cfg := base
		cfg.Seed = seed
		w := NewWorld(cfg)
		metrics, err := run(w)
		if err != nil {
			return nil, fmt.Errorf("seed %d: %w", seed, err)
		}
		rep.Seeds = append(rep.Seeds, seed)
		for name, v := range metrics {
			rep.Metrics[name] = append(rep.Metrics[name], v)
		}
	}
	return rep, nil
}

// ReplicateReciprocation reruns the Table 5 experiment across seeds and
// reports the per-cell reciprocation rates, named
// "<service>/<E|L>/<drive>→<inbound>".
func ReplicateReciprocation(base Config, seeds []uint64, emptyPer, livedPer int) (*Replication, error) {
	return Replicate(base, seeds, func(w *World) (map[string]float64, error) {
		tbl, err := w.ReciprocationStudy(emptyPer, livedPer)
		if err != nil {
			return nil, err
		}
		out := make(map[string]float64, len(tbl.Cells)*2)
		for _, c := range tbl.Cells {
			kind := "E"
			if c.Kind == honeypot.LivedIn {
				kind = "L"
			}
			prefix := fmt.Sprintf("%s/%s/%s", c.Service, kind, c.DriveType)
			out[prefix+"→like"] = c.InLikeRate
			out[prefix+"→follow"] = c.InFollowRate
		}
		return out, nil
	})
}

// ReplicateBusiness reruns the §5 study across seeds and reports the
// headline metrics (long-term fractions, revenue estimates).
func ReplicateBusiness(base Config, seeds []uint64) (*Replication, error) {
	return Replicate(base, seeds, func(w *World) (map[string]float64, error) {
		res, err := w.BusinessStudy()
		if err != nil {
			return nil, err
		}
		out := make(map[string]float64)
		for label, split := range res.Table6 {
			if split.Customers > 0 {
				out[label+"/longterm-frac"] = float64(split.LongTerm) / float64(split.Customers)
				out[label+"/lt-action-share"] = split.LongActions
			}
		}
		out["Boostgram/monthly-usd"] = res.Table8Boostgram.Monthly
		out["Insta*/monthly-usd-low"] = res.Table8InstaLow.Monthly
		out["Hublaagram/monthly-usd-low"] = res.Table9.MonthlyLow
		if mix, ok := res.Table11[LabelInstaStar]; ok {
			out["Insta*/follow-mix"] = mix[platform.ActionFollow]
		}
		return out, nil
	})
}
