package core

import (
	"time"

	"footsteps/internal/aas"
	"footsteps/internal/clock"
	"footsteps/internal/detection"
	"footsteps/internal/fraudar"
	"footsteps/internal/platform"
)

// DetectionScore is precision/recall of one detector against one service's
// ground-truth customer set.
type DetectionScore struct {
	Precision float64
	Recall    float64
	Detected  int
}

// GraphDetectionResults compares the FRAUDAR-style dense-subgraph baseline
// against the study's signal-based attribution, scored on engine ground
// truth. The paper's motivating claim (§1–§2): graph methods catch dense
// collusion structure, but reciprocity abuse launders actions through
// ordinary users and leaves no dense block to find.
type GraphDetectionResults struct {
	Blocks []fraudar.Result

	// Fraudar scores the union of detected block nodes per service.
	Fraudar map[string]DetectionScore
	// Signature scores the classifier-driven customer identification.
	Signature map[string]DetectionScore
}

// GraphDetectionStudy runs both detectors over one measurement window on a
// fresh world.
func (w *World) GraphDetectionStudy() (*GraphDetectionResults, error) {
	classifier, err := w.TrainClassifier(2)
	if err != nil {
		return nil, err
	}
	tracker := detection.NewTracker(classifier, w.Plat.Now())
	tracker.WireTelemetry(w.Cfg.Telemetry)
	w.Plat.Log().Subscribe(tracker.Observe)

	// The baseline sees only the action graph — no signals. Build the
	// bipartite actor→target graph from every allowed like and follow.
	graph := fraudar.NewBipartite()
	w.Plat.Log().Subscribe(func(ev platform.Event) {
		if ev.Outcome != platform.OutcomeAllowed || ev.Enforcement || ev.Duplicate {
			return
		}
		if ev.Type != platform.ActionLike && ev.Type != platform.ActionFollow {
			return
		}
		if ev.Target == 0 || ev.Target == ev.Actor {
			return
		}
		graph.AddEdge(fraudar.NodeID(ev.Actor), fraudar.NodeID(ev.Target))
	})

	w.RunAll()
	w.Sched.RunFor(time.Duration(w.Cfg.Days) * clock.Day)

	res := &GraphDetectionResults{
		Fraudar:   make(map[string]DetectionScore),
		Signature: make(map[string]DetectionScore),
	}
	res.Blocks = fraudar.DetectK(graph, 3, 8)

	detected := make(map[platform.AccountID]bool)
	for _, blk := range res.Blocks {
		for _, id := range blk.Sources {
			detected[platform.AccountID(id)] = true
		}
		for _, id := range blk.Targets {
			detected[platform.AccountID(id)] = true
		}
	}

	// Ground truth per label from the engines themselves.
	truth := make(map[string]map[platform.AccountID]bool)
	addTruth := func(label string, id platform.AccountID) {
		m := truth[label]
		if m == nil {
			m = make(map[platform.AccountID]bool)
			truth[label] = m
		}
		m[id] = true
	}
	for name, svc := range w.Recip {
		for _, c := range svc.Customers() {
			addTruth(LabelFor(name), c.Account)
		}
	}
	for name, svc := range w.Coll {
		for _, c := range svc.Customers() {
			addTruth(LabelFor(name), c.Account)
		}
	}

	anyTruth := make(map[platform.AccountID]bool)
	for _, m := range truth {
		for id := range m {
			anyTruth[id] = true
		}
	}

	for label, m := range truth {
		res.Fraudar[label] = score(detected, m, anyTruth)

		sig := make(map[platform.AccountID]bool)
		collusion := label == aas.NameHublaagram || label == aas.NameFollowersgratis
		if svc := tracker.Service(label); svc != nil {
			for id, a := range svc.ByAccount {
				if a.HasOutbound() || collusion {
					sig[id] = true
				}
			}
		}
		res.Signature[label] = score(sig, m, anyTruth)
	}
	return res, nil
}

// score computes recall against truth and precision against the union of
// all AAS accounts (a detected node that belongs to any service is not a
// false positive, merely attributed to a sibling).
func score(detected, truth, anyTruth map[platform.AccountID]bool) DetectionScore {
	var s DetectionScore
	s.Detected = len(detected)
	if len(detected) == 0 {
		return s
	}
	hitAny, hitThis := 0, 0
	for id := range detected {
		if anyTruth[id] {
			hitAny++
		}
		if truth[id] {
			hitThis++
		}
	}
	s.Precision = float64(hitAny) / float64(len(detected))
	if len(truth) > 0 {
		s.Recall = float64(hitThis) / float64(len(truth))
	}
	return s
}
