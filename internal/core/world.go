package core

import (
	"fmt"
	"time"

	"footsteps/internal/aas"
	"footsteps/internal/behavior"
	"footsteps/internal/clock"
	"footsteps/internal/detection"
	"footsteps/internal/faults"
	"footsteps/internal/honeypot"
	"footsteps/internal/netsim"
	"footsteps/internal/platform"
	"footsteps/internal/rng"
	"footsteps/internal/socialgraph"
	"footsteps/internal/step"
	"footsteps/internal/telemetry"
)

// World is one fully wired simulated universe: the platform, the organic
// population, the AAS engines, and the study's honeypot framework.
type World struct {
	Cfg   Config
	RNG   *rng.RNG
	Reg   *netsim.Registry
	Sched *clock.Scheduler
	Plat  *platform.Platform
	Pop   *behavior.Population

	Recip map[string]*aas.ReciprocityService
	Coll  map[string]*aas.CollusionService

	Honeypots *honeypot.Framework

	// Guard is the pre-existing per-IP volume defense, installed as the
	// base gatekeeper when cfg.IPDailyBudget > 0.
	Guard *detection.IPVolumeGuard

	// ProxyASNs back the evasion proxy networks of the §6.4 epilogue.
	ProxyASNs []netsim.ASN

	// Steps is the worker pool behind parallel per-tick stepping; nil
	// when cfg.Workers <= 1, in which case planning runs inline.
	Steps *step.Pool

	// Faults is the installed fault injector; nil when cfg.Faults is
	// nil (injection off).
	Faults *faults.Injector

	vpnSessions []*platform.Session
	celebIDs    []platform.AccountID

	// graph is the social graph behind Plat, kept for snapshot/restore.
	graph *socialgraph.Graph

	// vpnRNGs/crossRNG/crossSeen are the mutable state of the VPN-user
	// and cross-enrollment daily passes. They live on the World rather
	// than in scheduler closures so snapshots can serialize them (see
	// internal/persistence).
	vpnRNGs   []*rng.RNG
	crossRNG  *rng.RNG
	crossSeen map[string]int

	// telemetryDays is the daily JSONL metric stream armed by
	// StreamTelemetryDaily; FinalizeTelemetry flushes and closes it.
	telemetryDays *telemetry.DayWriter

	// finalizers run (in registration order) inside FinalizeTelemetry,
	// so sinks that swallow errors mid-run — the metrics JSONL stream,
	// the durable event log — get to surface their first failure at
	// teardown. See OnFinalize.
	finalizers []func() error

	// Checkpointing knobs (see RunDays): every checkpointEvery completed
	// days, RunDays writes a snapshot into checkpointDir. Zero/empty
	// disables. daysRun counts completed days for the snapshot cursor.
	checkpointEvery int
	checkpointDir   string
	daysRun         int
}

// LabelFor maps a service name to the label the platform can attribute:
// the Insta* franchises share infrastructure and collapse into "Insta*".
func LabelFor(name string) string {
	if name == aas.NameInstalex || name == aas.NameInstazood {
		return "Insta*"
	}
	return name
}

// LabelInstaStar is the merged franchise label.
const LabelInstaStar = "Insta*"

// NewWorld builds and wires a world from the config. Nothing is scheduled
// yet; experiments drive the scheduler themselves.
func NewWorld(cfg Config) *World {
	if cfg.Days <= 0 || cfg.OrganicPopulation <= 0 || cfg.PoolSize <= 0 {
		panic(fmt.Sprintf("core: degenerate config %+v", cfg))
	}
	root := rng.New(cfg.Seed)
	reg := netsim.NewRegistry()
	proxyASNs := aas.RegisterNetworks(reg)
	sched := clock.NewScheduler(clock.New())

	pcfg := platform.DefaultConfig()
	pcfg.GraphWrites = cfg.GraphWrites
	pcfg.Shards = cfg.Shards
	graph := socialgraph.NewSharded(cfg.Shards)
	graph.WireTelemetry(cfg.Telemetry)
	plat := platform.New(pcfg, graph, reg, sched)
	plat.WireTelemetry(cfg.Telemetry)
	// Span tracing wires in before any traffic, like telemetry: the first
	// login is already spanned. BindClock gives the tracer the simulated
	// clock so span identity derives from ticks, never wall time.
	if cfg.Trace != nil {
		cfg.Trace.BindClock(func() int64 { return sched.Clock().Now().UnixNano() })
		cfg.Trace.WireTelemetry(cfg.Telemetry)
		plat.SetTracer(cfg.Trace)
	}

	w := &World{
		Cfg:       cfg,
		RNG:       root,
		Reg:       reg,
		Sched:     sched,
		Plat:      plat,
		Recip:     make(map[string]*aas.ReciprocityService),
		Coll:      make(map[string]*aas.CollusionService),
		ProxyASNs: proxyASNs,
		graph:     graph,

		checkpointEvery: cfg.CheckpointEvery,
		checkpointDir:   cfg.CheckpointDir,
	}
	// Fault injection wires in before any traffic exists, so the first
	// login is already subject to the schedule. The injector's seed comes
	// from a dedicated Split stream (pure; consumes no root draws), so a
	// faults-off run's draw sequences are untouched.
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			panic(fmt.Sprintf("core: fault profile: %v", err))
		}
		w.Faults = faults.NewInjector(cfg.Faults, root.Split("faults"))
		w.Faults.BindNetwork(reg)
		w.Faults.WireTelemetry(cfg.Telemetry)
		plat.SetFaultInjector(w.Faults)
	}

	// With telemetry or tracing on, even a sequential run gets a
	// (1-worker) pool so the tick tracer sees plan/apply phases; Run with
	// workers <= 1 is the identical inline path, so this changes timing
	// visibility, not bytes.
	if cfg.Workers > 1 || cfg.Telemetry != nil || cfg.Trace != nil {
		w.Steps = step.NewPool(cfg.Workers)
		w.Steps.SetTracer(telemetry.NewTickTracer(cfg.Telemetry))
		w.Steps.SetTrace(cfg.Trace)
	}

	// Organic population: honeypot monitoring must observe reciprocation,
	// so the framework subscribes before the population acts; subscriber
	// order otherwise does not matter.
	w.Honeypots = honeypot.New(plat, sched, root.Split("honeypot"))
	w.Honeypots.Wire()

	w.Pop = behavior.New(behavior.DefaultModel(), plat, sched, root.Split("population"))
	w.Pop.SetStepPool(w.Steps)
	w.Pop.SetScratchReuse(!cfg.DisableScratchReuse)
	w.Pop.AddMembers(cfg.OrganicPopulation)

	// High-profile celebrity accounts for lived-in honeypot setup.
	for i := 0; i < 30; i++ {
		id, err := plat.RegisterAccount(fmt.Sprintf("celebrity-%d", i), "pw-celeb",
			platform.Profile{PhotoCount: 40, HasProfilePic: true, HasBio: true, HasName: true}, "USA")
		if err != nil {
			panic(err)
		}
		w.celebIDs = append(w.celebIDs, id)
	}
	w.Honeypots.SetHighProfile(w.celebIDs)

	// Services with their curated pools.
	for _, spec := range aas.Catalog() {
		if spec.Name == aas.NameFollowersgratis && !cfg.IncludeFollowersgratis {
			continue
		}
		switch spec.Technique {
		case aas.TechniqueReciprocity:
			svc := aas.NewReciprocityService(spec, plat, sched, root.Split("svc-"+spec.Name))
			svc.SetStepPool(w.Steps)
			svc.SetScratchReuse(!cfg.DisableScratchReuse)
			svc.WireTelemetry(cfg.Telemetry)
			svc.WireTrace(cfg.Trace)
			pool := w.Pop.AddCuratedPool(spec.Name, spec.TargetPool, cfg.PoolSize)
			svc.SetTargetPool(pool)
			w.Recip[spec.Name] = svc
		case aas.TechniqueCollusion:
			ipPool := 48
			if spec.Name == aas.NameFollowersgratis {
				ipPool = 4 // §5: concentrated on very few addresses
			}
			svc := aas.NewCollusionService(spec, plat, sched, root.Split("svc-"+spec.Name), ipPool)
			svc.SetStepPool(w.Steps)
			svc.SetScratchReuse(!cfg.DisableScratchReuse)
			svc.WireTelemetry(cfg.Telemetry)
			svc.WireTrace(cfg.Trace)
			w.Coll[spec.Name] = svc
		}
	}

	w.Pop.Wire()
	w.setupVPNUsers()

	if cfg.IPDailyBudget > 0 {
		w.Guard = detection.NewIPVolumeGuard(cfg.IPDailyBudget)
		w.Guard.WireTelemetry(cfg.Telemetry)
		w.Plat.SetGatekeeper(w.Guard)
	}

	// Automation runs from day 0 through the window plus slack, so trial
	// honeypots enrolled during warmup receive service immediately.
	// Iteration follows catalog order: scheduler insertion order is part
	// of the deterministic timeline.
	for _, name := range w.ServiceNames() {
		if svc, ok := w.Recip[name]; ok {
			svc.StartAutomation(cfg.Days + 20)
		}
		if svc, ok := w.Coll[name]; ok {
			svc.StartAutomation(cfg.Days + 20)
		}
	}
	return w
}

// setupVPNUsers creates benign users whose traffic shares Hublaagram's US
// cloud ASN, so that ASN carries blended traffic and takes the
// 99th-percentile threshold rule.
func (w *World) setupVPNUsers() {
	r := w.RNG.Split("vpn")
	members := w.Pop.Members()
	for i := 0; i < w.Cfg.VPNUsers; i++ {
		name := fmt.Sprintf("vpn-user-%d", i)
		if _, err := w.Plat.RegisterAccount(name, "pw-"+name,
			platform.Profile{PhotoCount: 5, HasProfilePic: true, HasBio: true, HasName: true}, "USA"); err != nil {
			panic(err)
		}
		sess, err := w.Plat.Login(name, "pw-"+name, platform.ClientInfo{
			IP:          w.Reg.Allocate(aas.ASNHublaagramUS),
			Fingerprint: "mobile-official",
			API:         platform.APIPrivate,
		})
		if err != nil {
			panic(err)
		}
		w.vpnSessions = append(w.vpnSessions, sess)
	}
	if len(members) == 0 {
		return
	}
	// Each VPN user draws daily activity from a private forked stream so
	// the plan phase can shard them across workers without changing what
	// any user does.
	w.vpnRNGs = make([]*rng.RNG, len(w.vpnSessions))
	for i := range w.vpnRNGs {
		w.vpnRNGs[i] = r.Fork(uint64(i))
	}
	type vpnOp struct {
		sess   *platform.Session
		like   bool
		target platform.AccountID
		post   platform.PostID
	}
	// Modest daily organic activity through the VPN: action counts and
	// targets are planned in parallel against the pre-tick snapshot, then
	// the likes and follows apply serially in user order. The intent
	// buffers persist in the closure and are reused day over day.
	var vpnBufs step.Buffers[vpnOp]
	w.Sched.EveryDay(11*time.Hour, w.Cfg.Days+7, func(int) {
		bufs := &vpnBufs
		if w.Cfg.DisableScratchReuse {
			bufs = nil
		}
		step.RunInto(w.Steps, bufs, len(w.vpnSessions), func(i int, emit func(vpnOp)) {
			ur := w.vpnRNGs[i]
			n := 2 + ur.Intn(25)
			for k := 0; k < n; k++ {
				target := members[ur.Intn(len(members))]
				if ur.Bool(0.8) {
					if pid, ok := w.Plat.LatestPost(target); ok {
						emit(vpnOp{sess: w.vpnSessions[i], like: true, post: pid})
					}
				} else {
					emit(vpnOp{sess: w.vpnSessions[i], target: target})
				}
			}
		}, func(op vpnOp) {
			if op.like {
				op.sess.Do(platform.Request{Action: platform.ActionLike, Post: op.post})
			} else {
				op.sess.Do(platform.Request{Action: platform.ActionFollow, Target: op.target})
			}
		})
	})
}

// Services returns all reciprocity service names in catalog order, then
// collusion names.
func (w *World) ServiceNames() []string {
	var out []string
	for _, spec := range aas.Catalog() {
		if _, ok := w.Recip[spec.Name]; ok {
			out = append(out, spec.Name)
		}
		if _, ok := w.Coll[spec.Name]; ok {
			out = append(out, spec.Name)
		}
	}
	return out
}

// RunAll schedules every service's managed customer lifecycle for the
// window (automation drivers have been live since world construction).
// Catalog-ordered for determinism.
func (w *World) RunAll() {
	for _, name := range w.ServiceNames() {
		if svc, ok := w.Recip[name]; ok {
			svc.StartLifecycle(w.Cfg.Days, w.Cfg.scaleFor(name))
		}
		if svc, ok := w.Coll[name]; ok {
			svc.StartLifecycle(w.Cfg.Days, w.Cfg.scaleFor(name))
		}
	}
	w.startCrossEnrollment(w.Cfg.Days)
}

// Cross-enrollment rates (§5.1): a sliver of customers experiment with a
// second service, "nearly all ... with free trials".
const (
	crossRecipProb   = 0.015 // enroll with a second reciprocity AAS
	crossCollideProb = 0.035 // reciprocity customer also tries Hublaagram
)

// startCrossEnrollment schedules a daily pass that takes each reciprocity
// service's newest customers and enrolls a small fraction with a sibling
// service, producing the §5.1 account-overlap population.
func (w *World) startCrossEnrollment(days int) {
	w.crossRNG = w.RNG.Split("cross-enroll")
	r := w.crossRNG                    // stable pointer: restore overwrites in place via SetState
	w.crossSeen = make(map[string]int) // per service: customers already considered
	recipNames := make([]string, 0, len(w.Recip))
	for _, name := range w.ServiceNames() {
		if _, ok := w.Recip[name]; ok {
			recipNames = append(recipNames, name)
		}
	}
	hubla := w.Coll[aas.NameHublaagram]

	w.Sched.EveryDay(22*time.Hour, days, func(int) {
		for i, name := range recipNames {
			svc := w.Recip[name]
			customers := svc.Customers()
			for _, c := range customers[w.crossSeen[name]:] {
				if !c.Managed {
					continue
				}
				if len(recipNames) > 1 && r.Bool(crossRecipProb) {
					other := w.Recip[recipNames[(i+1)%len(recipNames)]]
					other.EnrollTrial(c.Username, c.Password, aas.OfferFollow)
				}
				if hubla != nil && r.Bool(crossCollideProb) {
					if cc, err := hubla.EnrollFree(c.Username, c.Password, aas.OfferLike); err == nil {
						hubla.RequestFree(cc, aas.OfferLike)
					}
				}
			}
			w.crossSeen[name] = len(customers)
		}
	})
}

// SetExperimentGatekeeper installs gk on top of the pre-existing IP
// volume guard; pass nil to drop back to the guard alone.
func (w *World) SetExperimentGatekeeper(gk platform.Gatekeeper) {
	switch {
	case gk == nil && w.Guard == nil:
		w.Plat.SetGatekeeper(nil)
	case gk == nil:
		w.Plat.SetGatekeeper(w.Guard)
	case w.Guard == nil:
		w.Plat.SetGatekeeper(gk)
	default:
		w.Plat.SetGatekeeper(detection.Chain(w.Guard, gk))
	}
}

// TrainClassifier enrolls a small fleet of honeypots (one per service and
// offering family), runs warmup days of trial traffic, and returns a
// classifier trained on the honeypot ground truth plus the inactive
// baseline check (§4.1.3, §5).
func (w *World) TrainClassifier(warmupDays int) (*detection.Classifier, error) {
	col := &platform.Collector{Filter: func(ev platform.Event) bool {
		_, isHP := w.Honeypots.Account(ev.Actor)
		return isHP
	}}
	col.Attach(w.Plat.Log())

	// One empty honeypot per (service, offering) pair, per the paper's
	// registration matrix, at reduced count.
	enroll := func(name string, offerings ...aas.Offering) error {
		for _, o := range offerings {
			hp, err := w.Honeypots.Create(honeypot.Empty)
			if err != nil {
				return err
			}
			if svc, ok := w.Recip[name]; ok {
				if _, err := svc.EnrollTrial(hp.Username, hp.Password, o); err != nil {
					return err
				}
			} else if svc, ok := w.Coll[name]; ok {
				c, err := svc.EnrollFree(hp.Username, hp.Password, o)
				if err != nil {
					return err
				}
				// Exercise the free service so inbound and outbound
				// signatures both appear.
				if _, err := svc.RequestFree(c, o); err != nil {
					return err
				}
			}
			w.Honeypots.MarkEnrolled(hp, name)
		}
		return nil
	}
	for _, name := range w.ServiceNames() {
		spec := aas.SpecByName(name)
		var offers []aas.Offering
		for _, o := range []aas.Offering{aas.OfferLike, aas.OfferFollow} {
			if spec.Offers(o) {
				offers = append(offers, o)
			}
		}
		if err := enroll(name, offers...); err != nil {
			return nil, err
		}
	}
	// Inactive baseline fleet.
	if _, err := w.Honeypots.CreateBatch(honeypot.Inactive, 20); err != nil {
		return nil, err
	}

	w.Sched.RunFor(time.Duration(warmupDays) * clock.Day)

	if noisy := w.Honeypots.BaselineQuiet(); len(noisy) > 0 {
		return nil, fmt.Errorf("core: %d inactive honeypots saw activity; attribution unsound", len(noisy))
	}

	classifier := detection.NewClassifier()
	classifier.TrainFromHoneypots(col.Events, func(id platform.AccountID) string {
		if hp, ok := w.Honeypots.Account(id); ok && hp.EnrolledWith != "" {
			return LabelFor(hp.EnrolledWith)
		}
		return ""
	})
	return classifier, nil
}
