package core

import (
	"sync"
	"testing"
)

func TestIngestQueueOrderAndBackpressure(t *testing.T) {
	q := NewIngestQueue[int](4)
	if q.Cap() != 4 {
		t.Fatalf("Cap = %d", q.Cap())
	}
	for i := 1; i <= 4; i++ {
		if !q.TryPush(i) {
			t.Fatalf("push %d on non-full queue failed", i)
		}
	}
	if q.TryPush(5) {
		t.Fatal("push on full queue succeeded")
	}
	if q.Len() != 4 {
		t.Fatalf("Len = %d", q.Len())
	}
	got := q.Drain(nil)
	if len(got) != 4 || got[0] != 1 || got[3] != 4 {
		t.Fatalf("Drain = %v", got)
	}
	if q.Len() != 0 {
		t.Fatalf("Len after drain = %d", q.Len())
	}
	// Ring wrap: interleave pushes and drains past the capacity.
	for round := 0; round < 3; round++ {
		for i := 0; i < 3; i++ {
			if !q.TryPush(round*10 + i) {
				t.Fatal("push after drain failed")
			}
		}
		got = q.Drain(got[:0])
		if len(got) != 3 || got[0] != round*10 || got[2] != round*10+2 {
			t.Fatalf("round %d: Drain = %v", round, got)
		}
	}
}

func TestIngestQueueReadySignal(t *testing.T) {
	q := NewIngestQueue[int](8)
	select {
	case <-q.Ready():
		t.Fatal("ready before any push")
	default:
	}
	q.TryPush(1)
	select {
	case <-q.Ready():
	default:
		t.Fatal("no ready signal after push")
	}
	// The signal coalesces: many pushes, one wake-up, full drain.
	q.TryPush(2)
	q.TryPush(3)
	if got := q.Drain(nil); len(got) != 3 {
		t.Fatalf("Drain = %v", got)
	}
}

func TestIngestQueueConcurrentProducers(t *testing.T) {
	const producers, perProducer = 8, 1000
	q := NewIngestQueue[int](64)
	var wg sync.WaitGroup
	var accepted [producers]int
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if q.TryPush(p) {
					accepted[p]++
				}
			}
		}(p)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	var drained int
	var buf []int
	for {
		select {
		case <-done:
			drained += len(q.Drain(buf[:0]))
			want := 0
			for _, n := range accepted[:] {
				want += n
			}
			if drained != want {
				t.Errorf("drained %d, producers got %d accepts", drained, want)
			}
			return
		case <-q.Ready():
			buf = q.Drain(buf[:0])
			drained += len(buf)
		}
	}
}
