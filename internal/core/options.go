package core

import (
	"footsteps/internal/faults"
	"footsteps/internal/telemetry"
	"footsteps/internal/trace"
)

// Option mutates a Config during construction. Options compose left to
// right over a base config, so new knobs stop widening struct literals:
//
//	cfg := core.New(core.WithWorkers(8), core.WithShards(16), core.WithFaults("storm"))
//
// The plain Config struct keeps working — options are a front door, not
// a replacement.
type Option func(*Config)

// New returns DefaultConfig with the options applied.
func New(opts ...Option) Config {
	cfg := DefaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// NewTest returns TestConfig with the options applied.
func NewTest(opts ...Option) Config {
	cfg := TestConfig()
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// WithSeed sets the run seed.
func WithSeed(seed uint64) Option { return func(c *Config) { c.Seed = seed } }

// WithScale sets the customer-dynamics scale.
func WithScale(scale float64) Option { return func(c *Config) { c.Scale = scale } }

// WithDays sets the measurement-window length.
func WithDays(days int) Option { return func(c *Config) { c.Days = days } }

// WithWorkers sets the intent-planning worker count.
func WithWorkers(n int) Option { return func(c *Config) { c.Workers = n } }

// WithShards sets the lock-stripe count for platform and graph state.
func WithShards(n int) Option { return func(c *Config) { c.Shards = n } }

// WithGraphWrites toggles full social-graph fidelity.
func WithGraphWrites(on bool) Option { return func(c *Config) { c.GraphWrites = on } }

// WithOrganicPopulation sets the general-population size.
func WithOrganicPopulation(n int) Option { return func(c *Config) { c.OrganicPopulation = n } }

// WithPoolSize sets each reciprocity service's target-pool size.
func WithPoolSize(n int) Option { return func(c *Config) { c.PoolSize = n } }

// WithVPNUsers sets the benign-VPN-user count.
func WithVPNUsers(n int) Option { return func(c *Config) { c.VPNUsers = n } }

// WithIPDailyBudget sets the per-IP daily action cap (0 disables).
func WithIPDailyBudget(n int) Option { return func(c *Config) { c.IPDailyBudget = n } }

// WithScratchReuse toggles cross-tick reuse of planning scratch buffers
// (on by default; reuse never changes the event stream — see
// docs/PERFORMANCE.md).
func WithScratchReuse(on bool) Option {
	return func(c *Config) { c.DisableScratchReuse = !on }
}

// WithTelemetry attaches a telemetry registry (nil disables).
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(c *Config) { c.Telemetry = reg }
}

// WithTrace attaches a span tracer (nil disables). Tracing is a pure
// observer; the event stream is byte-identical with it on or off at any
// sample rate — see docs/OBSERVABILITY.md.
func WithTrace(tr *trace.Tracer) Option {
	return func(c *Config) { c.Trace = tr }
}

// WithFaults enables the named built-in fault scenario (blip, flap,
// asn-outage, storm, mixed — see docs/FAULTS.md). It panics on an
// unknown name, like faults.MustScenario.
func WithFaults(name string) Option {
	return func(c *Config) { c.Faults = faults.MustScenario(name) }
}

// WithFaultProfile attaches a fully built fault profile (nil disables).
func WithFaultProfile(p *faults.Profile) Option {
	return func(c *Config) { c.Faults = p }
}

// WithCheckpointEvery makes RunDays write a snapshot after every n
// completed days (0 disables; see docs/PERSISTENCE.md).
func WithCheckpointEvery(n int) Option {
	return func(c *Config) { c.CheckpointEvery = n }
}

// WithCheckpointDir sets where periodic checkpoints are written.
func WithCheckpointDir(dir string) Option {
	return func(c *Config) { c.CheckpointDir = dir }
}

// WithServer enables the HTTP/WS serving layer on addr (host:port).
// See docs/API.md for the endpoints and the determinism contract.
func WithServer(addr string) Option {
	return func(c *Config) { c.ServeAddr = addr }
}

// WithServeQueueDepth bounds the ingress queue between network handlers
// and the world loop (0 = server default). A full queue rejects with
// the wire "overloaded" code.
func WithServeQueueDepth(n int) Option {
	return func(c *Config) { c.ServeQueueDepth = n }
}

// WithServePace sets simulated seconds per wall-clock second while
// serving (1.0 = real time; 0 = server default).
func WithServePace(pace float64) Option {
	return func(c *Config) { c.ServePace = pace }
}

// WithServeMaxBatch caps envelopes applied per drain (0 = server
// default).
func WithServeMaxBatch(n int) Option {
	return func(c *Config) { c.ServeMaxBatch = n }
}

// WithServeIngressLog records admitted envelopes and their drain
// instants to a FING1 file for later replay.
func WithServeIngressLog(path string) Option {
	return func(c *Config) { c.ServeIngressLog = path }
}
