package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"footsteps/internal/aas"
	"footsteps/internal/intervention"
	"footsteps/internal/platform"
	"footsteps/internal/stats"
)

// ExportBusiness writes the §5 results as TSV files into dir (created if
// missing): table6.tsv … table11.tsv, figure2.tsv, and the Figure 3/4 CDF
// series as figure3.tsv / figure4.tsv, ready for any plotting tool.
func ExportBusiness(res *BusinessResults, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name, content string) error {
		return os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644)
	}

	labels := make([]string, 0, len(res.Table6))
	for l := range res.Table6 {
		labels = append(labels, l)
	}
	sort.Strings(labels)

	var b strings.Builder
	b.WriteString("service\tcustomers\tlong_term\tshort_term\tlong_action_share\n")
	for _, l := range labels {
		s := res.Table6[l]
		fmt.Fprintf(&b, "%s\t%d\t%d\t%d\t%.4f\n", l, s.Customers, s.LongTerm, s.ShortTerm, s.LongActions)
	}
	if err := write("table6.tsv", b.String()); err != nil {
		return err
	}

	b.Reset()
	b.WriteString("service\toperating_country\tasn_countries\n")
	for _, row := range res.Table7 {
		fmt.Fprintf(&b, "%s\t%s\t%s\n", row.Label, row.OperatingCountry,
			strings.Join(dedupStrings(row.ASNCountries), ","))
	}
	if err := write("table7.tsv", b.String()); err != nil {
		return err
	}

	b.Reset()
	b.WriteString("service\tcountry\tfraction\n")
	for _, l := range labels {
		for _, share := range res.Figure2[l] {
			fmt.Fprintf(&b, "%s\t%s\t%.4f\n", l, share.Country, share.Fraction)
		}
	}
	if err := write("figure2.tsv", b.String()); err != nil {
		return err
	}

	b.Reset()
	b.WriteString("service\tpaid_accounts\tpaid_days\tmonthly_usd\n")
	fmt.Fprintf(&b, "Boostgram\t%d\t%d\t%.2f\n",
		res.Table8Boostgram.PaidAccounts, res.Table8Boostgram.PaidDays, res.Table8Boostgram.Monthly)
	fmt.Fprintf(&b, "Insta*-low\t%d\t%d\t%.2f\n",
		res.Table8InstaLow.PaidAccounts, res.Table8InstaLow.PaidDays, res.Table8InstaLow.Monthly)
	fmt.Fprintf(&b, "Insta*-high\t%d\t%d\t%.2f\n",
		res.Table8InstaHigh.PaidAccounts, res.Table8InstaHigh.PaidDays, res.Table8InstaHigh.Monthly)
	if err := write("table8.tsv", b.String()); err != nil {
		return err
	}

	b.Reset()
	b.WriteString("product\taccounts\trevenue_usd\n")
	t9 := res.Table9
	fmt.Fprintf(&b, "no_outbound\t%d\t%.2f\n", t9.NoOutboundAccounts, t9.NoOutboundRevenue)
	fmt.Fprintf(&b, "one_time_likes\t%d\t%.2f\n", t9.OneTimeBuyers, t9.OneTimeRevenue)
	pricing := aas.SpecByName(aas.NameHublaagram).Collusion
	for i := range t9.TierAccounts {
		fmt.Fprintf(&b, "tier_%d_%d\t%d\t%.2f\n",
			pricing.MonthlyTiers[i].MinLikes, pricing.MonthlyTiers[i].MaxLikes,
			t9.TierAccounts[i], t9.TierRevenue[i])
	}
	fmt.Fprintf(&b, "ads_low\t%d\t%.2f\n", t9.AdImpressions, t9.AdRevenueLow)
	fmt.Fprintf(&b, "ads_high\t%d\t%.2f\n", t9.AdImpressions, t9.AdRevenueHigh)
	fmt.Fprintf(&b, "total_low\t\t%.2f\n", t9.MonthlyLow)
	fmt.Fprintf(&b, "total_high\t\t%.2f\n", t9.MonthlyHigh)
	if err := write("table9.tsv", b.String()); err != nil {
		return err
	}

	b.Reset()
	b.WriteString("service\tnew_fraction\tpreexisting_fraction\n")
	for _, l := range labels {
		if s, ok := res.Table10[l]; ok {
			fmt.Fprintf(&b, "%s\t%.4f\t%.4f\n", l, s.NewFraction, s.PreexistingFraction)
		}
	}
	if err := write("table10.tsv", b.String()); err != nil {
		return err
	}

	b.Reset()
	types := []platform.ActionType{platform.ActionLike, platform.ActionFollow, platform.ActionComment, platform.ActionUnfollow}
	b.WriteString("service")
	for _, t := range types {
		fmt.Fprintf(&b, "\t%s", t)
	}
	b.WriteString("\n")
	for _, l := range labels {
		b.WriteString(l)
		for _, t := range types {
			fmt.Fprintf(&b, "\t%.4f", res.Table11[l][t])
		}
		b.WriteString("\n")
	}
	if err := write("table11.tsv", b.String()); err != nil {
		return err
	}

	b.Reset()
	b.WriteString("service\tday\tactive_longterm\tbirths\tdeaths\n")
	for _, l := range labels {
		ss, ok := res.Stability[l]
		if !ok {
			continue
		}
		for d := range ss.ActivePerDay {
			fmt.Fprintf(&b, "%s\t%d\t%d\t%d\t%d\n", l, d, ss.ActivePerDay[d], ss.Births[d], ss.Deaths[d])
		}
	}
	if err := write("stability.tsv", b.String()); err != nil {
		return err
	}

	// CDF series for Figures 3 and 4, plus rendered SVGs.
	if err := write("figure3.tsv", cdfSeriesTSV(res.Figure3)); err != nil {
		return err
	}
	if err := write("figure4.tsv", cdfSeriesTSV(res.Figure4)); err != nil {
		return err
	}
	return ExportBusinessSVG(res, dir)
}

// cdfSeriesTSV renders sample\tx\tcdf rows (64 quantile-spaced points per
// labeled CDF) — the Figure 3/4 plot data.
func cdfSeriesTSV(cdfs map[string]*stats.CDF) string {
	labels := make([]string, 0, len(cdfs))
	for l := range cdfs {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	var b strings.Builder
	b.WriteString("sample\tx\tcdf\n")
	for _, l := range labels {
		for _, pt := range cdfs[l].Series(64) {
			fmt.Fprintf(&b, "%s\t%.4g\t%.4f\n", l, pt.X, pt.Y)
		}
	}
	return b.String()
}

// ExportIntervention writes Figures 5–7 day series as TSVs into dir.
func ExportIntervention(res *InterventionResults, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString("day\tblock\tdelay\tcontrol\tthreshold\n")
	for d := 0; d < res.Figure5.Days; d++ {
		fmt.Fprintf(&b, "%d\t%s\t%s\t%s\t%.2f\n", d,
			tsvCell(res.Figure5.Block, d), tsvCell(res.Figure5.Delay, d),
			tsvCell(res.Figure5.Control, d), res.Figure5.Threshold)
	}
	if err := os.WriteFile(filepath.Join(dir, "figure5.tsv"), []byte(b.String()), 0o644); err != nil {
		return err
	}
	writeElig := func(name string, s EligibilitySeries) error {
		var b strings.Builder
		b.WriteString("day\tblock\tdelay\tcontrol\n")
		for d := 0; d < s.Days; d++ {
			fmt.Fprintf(&b, "%d\t%s\t%s\t%s\n", d,
				tsvCell(s.Arms[intervention.AssignBlock], d),
				tsvCell(s.Arms[intervention.AssignDelay], d),
				tsvCell(s.Arms[intervention.AssignControl], d))
		}
		return os.WriteFile(filepath.Join(dir, name), []byte(b.String()), 0o644)
	}
	if err := writeElig("figure6.tsv", res.Figure6); err != nil {
		return err
	}
	if err := writeElig("figure7.tsv", res.Figure7); err != nil {
		return err
	}
	return ExportInterventionSVG(res, dir)
}

func tsvCell(s DailySeries, d int) string {
	if d >= len(s.Seen) || !s.Seen[d] {
		return "NA"
	}
	return fmt.Sprintf("%.4f", s.Values[d])
}
