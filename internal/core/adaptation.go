package core

import (
	"time"

	"footsteps/internal/aas"
	"footsteps/internal/clock"
	"footsteps/internal/detection"
	"footsteps/internal/intervention"
	"footsteps/internal/netsim"
	"footsteps/internal/platform"
)

// PhaseStats summarizes one service's like traffic during one phase of the
// adaptation study.
type PhaseStats struct {
	Attempted int
	Blocked   int
	Delivered int
}

// BlockedFraction returns blocked/attempted (0 when idle).
func (p PhaseStats) BlockedFraction() float64 {
	if p.Attempted == 0 {
		return 0
	}
	return float64(p.Blocked) / float64(p.Attempted)
}

// AdaptationResults reproduces the §6.4 epilogue: sustained broad blocking,
// the services' move onto proxy networks, and the endgame.
type AdaptationResults struct {
	// Phase 1: broad blocking reaches the services' home ASNs.
	Phase1 map[string]PhaseStats
	// Phase 2: after the proxy move, the same countermeasure has lost its
	// grip — the like traffic comes from unthresholded address space.
	Phase2 map[string]PhaseStats

	// ProxyDiversity: distinct ASNs the evaded traffic spans, per label.
	ProxyDiversity map[string]int

	// HublaagramOutOfStock reports the endgame: unable to produce
	// sustainable unblocked actions at its old scale, Hublaagram lists
	// everything as out of stock.
	HublaagramOutOfStock bool

	// StillAttributable: post-evasion attempted actions that the
	// fingerprint classifier still attributes, per label. Evasion beats
	// the *blocking*, not the *attribution*.
	StillAttributable map[string]int
}

// AdaptationStudy runs the epilogue on a fresh world: calibrate, block
// broadly, let the services move their traffic onto an extensive proxy
// network, and measure what the countermeasure can still reach.
// phaseDays sets the length of each of the two observation phases.
func (w *World) AdaptationStudy(calibDays, phaseDays int) (*AdaptationResults, error) {
	classifier, err := w.TrainClassifier(2)
	if err != nil {
		return nil, err
	}

	// Per-phase counters, switched by pointer.
	phase1 := make(map[string]PhaseStats)
	phase2 := make(map[string]PhaseStats)
	attributable := make(map[string]int)
	inPhase2 := false
	proxyASNSeen := make(map[string]map[netsim.ASN]bool)

	w.Plat.Log().Subscribe(func(ev platform.Event) {
		if ev.Type != platform.ActionLike || ev.Enforcement {
			return
		}
		label, ok := classifier.Classify(ev)
		if !ok {
			return
		}
		current := phase1
		if inPhase2 {
			current = phase2
		}
		st := current[label]
		st.Attempted++
		switch ev.Outcome {
		case platform.OutcomeBlocked:
			st.Blocked++
		case platform.OutcomeAllowed:
			st.Delivered++
		}
		current[label] = st
		if inPhase2 {
			attributable[label]++
			byASN := proxyASNSeen[label]
			if byASN == nil {
				byASN = make(map[netsim.ASN]bool)
				proxyASNSeen[label] = byASN
			}
			byASN[ev.ASN] = true
		}
	})

	// Calibration with services live.
	cal := detection.NewCalibrator(classifier.Classify)
	w.Plat.Log().Subscribe(cal.Observe)
	w.Sched.EveryDay(23*time.Hour+50*time.Minute, calibDays, func(int) { cal.EndDay() })
	w.RunAll()
	w.Sched.RunFor(time.Duration(calibDays) * clock.Day)
	thresholds := cal.Compute()

	// Broad blocking from day 0, all bins but the control.
	ctl := intervention.New(thresholds, classifier.Classify,
		intervention.BroadPolicy(9, 0), w.Plat.Now(), 24*time.Hour)
	ctl.WireTelemetry(w.Cfg.Telemetry)
	w.SetExperimentGatekeeper(ctl)

	// Phase 1: blocking bites.
	w.Sched.RunFor(time.Duration(phaseDays) * clock.Day)

	// The services react: an extensive proxy network drastically
	// increases IP diversity, and every session re-authenticates from the
	// new space.
	split := len(w.ProxyASNs) / 2
	recipProxies := netsim.NewProxyPool(w.Reg, w.ProxyASNs[:split], 400, w.RNG.Split("proxies-recip"))
	collProxies := netsim.NewProxyPool(w.Reg, w.ProxyASNs[split:], 400, w.RNG.Split("proxies-coll"))
	for _, name := range w.ServiceNames() {
		if svc, ok := w.Recip[name]; ok {
			svc.UseProxyNetwork(recipProxies)
			svc.ReloginAll()
		}
		if svc, ok := w.Coll[name]; ok {
			svc.UseProxyNetwork(collProxies)
			svc.ReloginAll()
		}
	}

	// Phase 2: the same gatekeeper, now out of reach.
	inPhase2 = true
	w.Sched.RunFor(time.Duration(phaseDays) * clock.Day)
	w.SetExperimentGatekeeper(nil)

	res := &AdaptationResults{
		Phase1:            phase1,
		Phase2:            phase2,
		ProxyDiversity:    make(map[string]int),
		StillAttributable: attributable,
	}
	for label, asns := range proxyASNSeen {
		res.ProxyDiversity[label] = len(asns)
	}

	// Endgame: Hublaagram's paid products depend on burst deliveries its
	// throttled sources can no longer sustain; it stops accepting payments.
	if hb, ok := w.Coll[aas.NameHublaagram]; ok {
		hb.StopSales()
		res.HublaagramOutOfStock = hb.SalesStopped()
	}
	return res, nil
}
