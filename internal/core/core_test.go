package core

import (
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"footsteps/internal/aas"
	"footsteps/internal/honeypot"
	"footsteps/internal/intervention"
	"footsteps/internal/platform"
)

func TestNewWorldWiring(t *testing.T) {
	cfg := TestConfig()
	cfg.GraphWrites = true
	w := NewWorld(cfg)
	if len(w.Recip) != 3 || len(w.Coll) != 1 {
		t.Fatalf("services: %d reciprocity, %d collusion", len(w.Recip), len(w.Coll))
	}
	names := w.ServiceNames()
	if len(names) != 4 {
		t.Fatalf("names %v", names)
	}
	if w.Pop.Size() < cfg.OrganicPopulation {
		t.Fatalf("population %d", w.Pop.Size())
	}
	if len(w.ProxyASNs) == 0 {
		t.Fatal("no proxy ASNs")
	}
}

func TestWorldIncludesFollowersgratisOnRequest(t *testing.T) {
	cfg := TestConfig()
	cfg.IncludeFollowersgratis = true
	w := NewWorld(cfg)
	if _, ok := w.Coll[aas.NameFollowersgratis]; !ok {
		t.Fatal("Followersgratis missing")
	}
}

func TestLabelFor(t *testing.T) {
	if LabelFor(aas.NameInstalex) != LabelInstaStar || LabelFor(aas.NameInstazood) != LabelInstaStar {
		t.Fatal("franchises not merged")
	}
	if LabelFor(aas.NameBoostgram) != aas.NameBoostgram {
		t.Fatal("Boostgram relabeled")
	}
}

func TestTrainClassifierLearnsAllServices(t *testing.T) {
	cfg := TestConfig()
	cfg.GraphWrites = true
	w := NewWorld(cfg)
	classifier, err := w.TrainClassifier(2)
	if err != nil {
		t.Fatal(err)
	}
	labels := classifier.Labels()
	want := map[string]bool{LabelInstaStar: true, aas.NameBoostgram: true, aas.NameHublaagram: true}
	for _, l := range labels {
		delete(want, l)
	}
	if len(want) != 0 {
		t.Fatalf("classifier missing labels %v (got %v)", want, labels)
	}
}

func TestReciprocationStudyTable5Shape(t *testing.T) {
	cfg := TestConfig()
	cfg.GraphWrites = true
	cfg.PoolSize = 1500
	w := NewWorld(cfg)
	tbl, err := w.ReciprocationStudy(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 3 services × 2 drive types × 2 kinds = 12 cells.
	if len(tbl.Cells) != 12 {
		t.Fatalf("cells %d", len(tbl.Cells))
	}
	for _, c := range tbl.Cells {
		if c.Outbound == 0 {
			t.Fatalf("cell %s/%v/%v drove no actions", c.Service, c.Kind, c.DriveType)
		}
		// Table 5 invariant: follows never reciprocated with likes.
		if c.DriveType == platform.ActionFollow && c.InLikeRate > 0.001 {
			t.Fatalf("follow drive produced like reciprocation %.4f", c.InLikeRate)
		}
	}
	// Follow→follow rates land near the paper's 10–16%.
	for _, svc := range []string{aas.NameBoostgram, aas.NameInstalex, aas.NameInstazood} {
		c, ok := tbl.Cell(svc, honeypot.Empty, platform.ActionFollow)
		if !ok {
			t.Fatalf("missing cell for %s", svc)
		}
		if c.InFollowRate < 0.06 || c.InFollowRate > 0.22 {
			t.Errorf("%s empty follow→follow %.3f, want ≈0.10–0.16", svc, c.InFollowRate)
		}
	}
	// Lived-in like→like beats empty like→like for every service.
	for _, svc := range []string{aas.NameBoostgram, aas.NameInstalex, aas.NameInstazood} {
		e, _ := tbl.Cell(svc, honeypot.Empty, platform.ActionLike)
		l, _ := tbl.Cell(svc, honeypot.LivedIn, platform.ActionLike)
		if l.InLikeRate <= e.InLikeRate {
			t.Errorf("%s lived-in like rate %.4f not above empty %.4f", svc, l.InLikeRate, e.InLikeRate)
		}
	}
	// The Instalex anomaly: like→follow reciprocation well above the
	// other services.
	ix, _ := tbl.Cell(aas.NameInstalex, honeypot.Empty, platform.ActionLike)
	bg, _ := tbl.Cell(aas.NameBoostgram, honeypot.Empty, platform.ActionLike)
	if ix.InFollowRate <= bg.InFollowRate*2 {
		t.Errorf("Instalex like→follow %.4f not anomalously above Boostgram %.4f", ix.InFollowRate, bg.InFollowRate)
	}
	// The formatted table renders every service.
	out := FormatTable5(tbl)
	for _, svc := range []string{"Instalex", "Instazood", "Boostgram"} {
		if !strings.Contains(out, svc) {
			t.Fatalf("formatted table missing %s:\n%s", svc, out)
		}
	}
}

func TestBusinessStudyEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("business study is a multi-second integration test")
	}
	cfg := TestConfig()
	cfg.Days = 45
	cfg.Scale = 1.0 / 2000
	// The collusion network needs a big enough source pool that paid
	// bursts exceed the 160 likes/hour free cap; everything else stays
	// small.
	cfg.ScaleOverride = map[string]float64{aas.NameHublaagram: 4}
	w := NewWorld(cfg)
	res, err := w.BusinessStudy()
	if err != nil {
		t.Fatal(err)
	}

	// Table 6: all three labels present with plausible shapes.
	for _, label := range []string{LabelInstaStar, aas.NameBoostgram, aas.NameHublaagram} {
		s, ok := res.Table6[label]
		if !ok || s.Customers == 0 {
			t.Fatalf("no customers for %s", label)
		}
		if s.LongTerm == 0 {
			t.Fatalf("%s has no long-term customers", label)
		}
		ltFrac := float64(s.LongTerm) / float64(s.Customers)
		if ltFrac < 0.10 || ltFrac > 0.90 {
			t.Errorf("%s long-term fraction %.2f outside sanity band", label, ltFrac)
		}
		// "By far most of the actions come from long-term users" (§5.1).
		if s.LongActions < 0.6 {
			t.Errorf("%s long-term action share %.2f, want > 0.6", label, s.LongActions)
		}
	}
	// Hublaagram is the most popular service by an order of magnitude.
	if res.Table6[aas.NameHublaagram].Customers < 3*res.Table6[aas.NameBoostgram].Customers {
		t.Errorf("Hublaagram %d customers not dominating Boostgram %d",
			res.Table6[aas.NameHublaagram].Customers, res.Table6[aas.NameBoostgram].Customers)
	}

	// Table 7: operating countries from the catalog, ASN countries from
	// observed traffic.
	if len(res.Table7) != 3 {
		t.Fatalf("table 7 rows %d", len(res.Table7))
	}
	for _, row := range res.Table7 {
		if len(row.ASNCountries) == 0 {
			t.Errorf("%s has no observed ASN countries", row.Label)
		}
	}

	// Figure 2: each service's advertised country ranks first.
	first := func(label string) string {
		shares := res.Figure2[label]
		if len(shares) == 0 {
			return ""
		}
		return shares[0].Country
	}
	if got := first(aas.NameHublaagram); got != "IDN" && got != "OTHER" {
		t.Errorf("Hublaagram top country %q", got)
	}
	if got := first(aas.NameBoostgram); got != "USA" && got != "OTHER" {
		t.Errorf("Boostgram top country %q", got)
	}

	// Table 8: revenue flows, Insta* low/high bracket is ordered.
	if res.Table8Boostgram.Monthly <= 0 || res.Table8InstaLow.Monthly <= 0 {
		t.Fatalf("reciprocity revenue missing: %+v %+v", res.Table8Boostgram, res.Table8InstaLow)
	}

	// Table 9: the collusion categories all materialize.
	if res.Table9.NoOutboundAccounts == 0 {
		t.Error("no no-outbound buyers detected")
	}
	tierTotal := 0
	for _, n := range res.Table9.TierAccounts {
		tierTotal += n
	}
	if tierTotal == 0 {
		t.Error("no monthly tier customers detected")
	}
	if res.Table9.AdImpressions == 0 {
		t.Error("no ad impressions estimated")
	}
	if res.Table9.MonthlyHigh < res.Table9.MonthlyLow {
		t.Error("revenue range inverted")
	}

	// Table 11: likes dominate Boostgram and Hublaagram; Insta* leans
	// follows over likes (the paper's mix).
	bgMix := res.Table11[aas.NameBoostgram]
	if bgMix[platform.ActionLike] <= bgMix[platform.ActionFollow] {
		t.Errorf("Boostgram mix likes %.2f <= follows %.2f", bgMix[platform.ActionLike], bgMix[platform.ActionFollow])
	}
	instaMix := res.Table11[LabelInstaStar]
	if instaMix[platform.ActionFollow] <= instaMix[platform.ActionLike] {
		t.Errorf("Insta* mix follows %.2f <= likes %.2f", instaMix[platform.ActionFollow], instaMix[platform.ActionLike])
	}
	if instaMix[platform.ActionUnfollow] == 0 {
		t.Error("Insta* mix has no unfollows")
	}

	// Figures 3/4: targeting bias — targeted accounts follow more and are
	// followed less than random users.
	for _, label := range []string{LabelInstaStar, aas.NameBoostgram} {
		if res.Figure3[label] == nil || res.Figure3[label].Len() == 0 {
			t.Fatalf("no Figure 3 sample for %s", label)
		}
		if res.Figure3[label].Median() <= res.Figure3["Random"].Median() {
			t.Errorf("%s target out-degree median %.0f not above random %.0f",
				label, res.Figure3[label].Median(), res.Figure3["Random"].Median())
		}
		if res.Figure4[label].Median() >= res.Figure4["Random"].Median() {
			t.Errorf("%s target in-degree median %.0f not below random %.0f",
				label, res.Figure4[label].Median(), res.Figure4["Random"].Median())
		}
	}

	// The formatted report renders without panicking and mentions the
	// headline tables.
	out := FormatBusiness(res)
	for _, want := range []string{"Table 6", "Table 7", "Table 8", "Table 9", "Table 10", "Table 11", "Figure 2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
	if !strings.Contains(FormatRevenueSummary(res), "$") {
		t.Fatal("revenue summary empty")
	}
}

func TestNarrowInterventionDynamics(t *testing.T) {
	if testing.Short() {
		t.Skip("intervention study is a multi-second integration test")
	}
	cfg := TestConfig()
	cfg.Days = 30
	cfg.Scale = 1.0 / 100 // enough Boostgram customers to populate bins
	cfg.ScaleOverride = map[string]float64{
		aas.NameHublaagram: 0.08, // keep the million-account service small
		aas.NameInstalex:   0.15,
		aas.NameInstazood:  0.15,
	}
	w := NewWorld(cfg)
	res, err := w.NarrowIntervention(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Figure5.Threshold <= 0 {
		t.Fatal("no follow threshold for Boostgram ASN")
	}

	// The blocked arm adapts: late-experiment medians sit at or below the
	// threshold while the control arm stays at its organic plan rate.
	lateBlock, lateControl, n := 0.0, 0.0, 0
	for d := res.Figure5.Days / 2; d < res.Figure5.Days; d++ {
		if res.Figure5.Block.Seen[d] && res.Figure5.Control.Seen[d] {
			lateBlock += res.Figure5.Block.Values[d]
			lateControl += res.Figure5.Control.Values[d]
			n++
		}
	}
	if n == 0 {
		t.Fatal("no overlapping block/control days")
	}
	lateBlock /= float64(n)
	lateControl /= float64(n)
	if lateBlock > res.Figure5.Threshold*1.25 {
		t.Errorf("blocked arm median %.1f stayed above threshold %.1f", lateBlock, res.Figure5.Threshold)
	}
	// The control arm keeps operating at its organic plan rate (the
	// threshold is the 25th percentile of that activity, so the control
	// median sits near or above it — allow small-bin sampling noise).
	if lateControl < res.Figure5.Threshold*0.85 {
		t.Errorf("control arm median %.1f fell well below threshold %.1f — control must be untouched", lateControl, res.Figure5.Threshold)
	}
	// Delay arm: no visible signal, so it keeps operating above threshold
	// like the control.
	lateDelay, n2 := 0.0, 0
	for d := res.Figure5.Days / 2; d < res.Figure5.Days; d++ {
		if res.Figure5.Delay.Seen[d] {
			lateDelay += res.Figure5.Delay.Values[d]
			n2++
		}
	}
	if n2 > 0 {
		lateDelay /= float64(n2)
		if lateDelay < res.Figure5.Threshold {
			t.Errorf("delay arm median %.1f reacted (below threshold %.1f) — delay must be invisible", lateDelay, res.Figure5.Threshold)
		}
	}

	// Figure 6 shape: early in the experiment a healthy share of
	// Hublaagram's blocked-bin likes are eligible; Hublaagram's like-block
	// detector has a 3-week lag, so within this 3-week run it never reacts.
	earlyElig, lateElig, nE, nL := 0.0, 0.0, 0, 0
	blockSeries := res.Figure6.Arms[intervention.AssignBlock]
	for d := 0; d < res.Figure6.Days; d++ {
		if !blockSeries.Seen[d] {
			continue
		}
		if d < 7 {
			earlyElig += blockSeries.Values[d]
			nE++
		} else if d >= res.Figure6.Days-7 {
			lateElig += blockSeries.Values[d]
			nL++
		}
	}
	if nE == 0 || nL == 0 {
		t.Fatal("Figure 6 series empty")
	}
	if earlyElig/float64(nE) <= 0 {
		t.Error("no eligible Hublaagram likes early in experiment")
	}

	// False positives stay small: the 99th-percentile rule bounds benign
	// impact.
	if res.BenignTouched > 200 {
		t.Errorf("benign actions touched: %d", res.BenignTouched)
	}

	if !strings.Contains(FormatIntervention(res), "Figure 5") {
		t.Fatal("intervention report missing Figure 5")
	}
}

func TestBroadInterventionSwitch(t *testing.T) {
	if testing.Short() {
		t.Skip("intervention study is a multi-second integration test")
	}
	cfg := TestConfig()
	cfg.Days = 24
	cfg.Scale = 1.0 / 100
	cfg.ScaleOverride = map[string]float64{
		aas.NameHublaagram: 0.08,
		aas.NameInstalex:   0.15,
		aas.NameInstazood:  0.15,
	}
	w := NewWorld(cfg)
	res, err := w.BroadIntervention(5, 14, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Week 1 (delay, invisible): eligible fraction in the treated arm
	// stays roughly at control levels. Week 2 (block): the services adapt
	// and the eligible fraction in the treated arm drops.
	avg := func(s DailySeries, from, to int) (float64, int) {
		sum, n := 0.0, 0
		for d := from; d < to && d < len(s.Seen); d++ {
			if s.Seen[d] {
				sum += s.Values[d]
				n++
			}
		}
		if n == 0 {
			return 0, 0
		}
		return sum / float64(n), n
	}
	delayArm := res.Figure7.Arms[intervention.AssignDelay]
	blockArm := res.Figure7.Arms[intervention.AssignBlock]
	week1, n1 := avg(delayArm, 1, 6)
	week2, n2 := avg(blockArm, 9, 14)
	if n1 == 0 || n2 == 0 {
		t.Fatalf("figure 7 arms empty: %d %d", n1, n2)
	}
	if week1 <= 0 {
		t.Error("no eligible follows during delay week — delay should not suppress activity")
	}
	if week2 >= week1 {
		t.Errorf("eligible fraction did not drop after the block switch: week1 %.3f, week2 %.3f", week1, week2)
	}
}

func TestAdaptationStudyEvasion(t *testing.T) {
	if testing.Short() {
		t.Skip("adaptation study is a multi-second integration test")
	}
	cfg := TestConfig()
	cfg.Days = 22
	cfg.Scale = 1.0 / 100
	cfg.ScaleOverride = map[string]float64{
		aas.NameHublaagram: 0.08,
		aas.NameInstalex:   0.15,
		aas.NameInstazood:  0.15,
	}
	w := NewWorld(cfg)
	res, err := w.AdaptationStudy(4, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{aas.NameBoostgram, aas.NameHublaagram} {
		p1, p2 := res.Phase1[label], res.Phase2[label]
		if p1.Attempted == 0 || p2.Attempted == 0 {
			t.Fatalf("%s: no like traffic in a phase (%+v, %+v)", label, p1, p2)
		}
		if p1.BlockedFraction() == 0 {
			t.Errorf("%s: no likes blocked before evasion", label)
		}
		// After the proxy move the countermeasure loses its grip.
		if p2.BlockedFraction() >= p1.BlockedFraction()/4 {
			t.Errorf("%s: blocked fraction %.3f after evasion, was %.3f — proxies should escape the ASN-keyed blocks",
				label, p2.BlockedFraction(), p1.BlockedFraction())
		}
		// But attribution still sees the traffic.
		if res.StillAttributable[label] == 0 {
			t.Errorf("%s: evaded traffic no longer attributable", label)
		}
	}
	// "Drastically increase IP diversity": evaded traffic spans many ASNs.
	if res.ProxyDiversity[aas.NameBoostgram] < 5 {
		t.Errorf("proxy diversity %d ASNs, want several", res.ProxyDiversity[aas.NameBoostgram])
	}
	if !res.HublaagramOutOfStock {
		t.Error("Hublaagram did not go out of stock")
	}
}

func TestFollowersgratisIsPrePoliced(t *testing.T) {
	// §5: "we exclude Followersgratis ... the service was already
	// well-policed by pre-existing abuse detection systems that prevent
	// high volumes of abuse originating from a small number of IP
	// addresses." Followersgratis concentrates on 4 addresses; Hublaagram
	// spreads over 48. Under the same per-IP budget, the former chokes.
	cfg := TestConfig()
	cfg.IncludeFollowersgratis = true
	cfg.GraphWrites = true
	cfg.IPDailyBudget = 120
	w := NewWorld(cfg)

	enroll := func(svc *aas.CollusionService, prefix string, n int) []*aas.Customer {
		var out []*aas.Customer
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("%s-%d", prefix, i)
			if _, err := w.Plat.RegisterAccount(name, "pw-"+name,
				platform.Profile{PhotoCount: 5, HasProfilePic: true, HasBio: true, HasName: true}, "IDN"); err != nil {
				t.Fatal(err)
			}
			c, err := svc.EnrollFree(name, "pw-"+name)
			if err != nil {
				t.Fatal(err)
			}
			c.EngagedUntil = c.EnrolledAt.Add(10 * 24 * time.Hour)
			out = append(out, c)
		}
		return out
	}
	fg := w.Coll[aas.NameFollowersgratis]
	hb := w.Coll[aas.NameHublaagram]
	// Lifecycle at zero scale: no managed customers, but the daily ticks
	// roll the sources' adaptation windows.
	fg.StartLifecycle(5, 0)
	hb.StartLifecycle(5, 0)
	fgCustomers := enroll(fg, "fg", 120)
	hbCustomers := enroll(hb, "hb", 120)

	// Every customer asks for one free follow quantum per day for 3 days.
	requested := map[string]int{}
	delivered := map[string]int{}
	for day := 0; day < 3; day++ {
		for i := range fgCustomers {
			n, _ := fg.RequestFree(fgCustomers[i], aas.OfferFollow)
			requested[aas.NameFollowersgratis] += fg.Spec().Collusion.FreeFollowQuantum
			delivered[aas.NameFollowersgratis] += n
			m, _ := hb.RequestFree(hbCustomers[i], aas.OfferFollow)
			requested[aas.NameHublaagram] += hb.Spec().Collusion.FreeFollowQuantum
			delivered[aas.NameHublaagram] += m
		}
		w.Sched.RunFor(24 * time.Hour)
	}

	fgRate := float64(delivered[aas.NameFollowersgratis]) / float64(requested[aas.NameFollowersgratis])
	hbRate := float64(delivered[aas.NameHublaagram]) / float64(requested[aas.NameHublaagram])
	if hbRate < 0.8 {
		t.Fatalf("Hublaagram delivery rate %.2f — the guard should not bite a 48-IP footprint", hbRate)
	}
	if fgRate > hbRate*0.7 {
		t.Fatalf("Followersgratis delivery rate %.2f vs Hublaagram %.2f — the per-IP guard should squeeze the 4-IP footprint", fgRate, hbRate)
	}
	if w.Guard.Throttled[fg.Spec().Fingerprint] == 0 {
		t.Fatal("guard recorded no Followersgratis throttling")
	}
}

func TestGraphDetectionBaselineAsymmetry(t *testing.T) {
	if testing.Short() {
		t.Skip("graph detection study is a multi-second integration test")
	}
	cfg := TestConfig()
	cfg.Days = 20
	cfg.Scale = 1.0 / 500
	cfg.GraphWrites = false
	w := NewWorld(cfg)
	res, err := w.GraphDetectionStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Blocks) == 0 {
		t.Fatal("no dense blocks detected at all")
	}
	hubFraudar := res.Fraudar[aas.NameHublaagram]
	hubSig := res.Signature[aas.NameHublaagram]
	bgFraudar := res.Fraudar[aas.NameBoostgram]
	bgSig := res.Signature[aas.NameBoostgram]

	// The collusion network is a dense block: the graph baseline finds a
	// substantial share of its customers.
	if hubFraudar.Recall < 0.3 {
		t.Errorf("fraudar Hublaagram recall %.2f — a collusion network should be findable", hubFraudar.Recall)
	}
	// Reciprocity abuse launders through organic users: the graph method
	// does far worse there than on the collusion network, and far worse
	// than signals do.
	if bgFraudar.Recall > hubFraudar.Recall*0.8 {
		t.Errorf("fraudar Boostgram recall %.2f vs Hublaagram %.2f — expected a clear gap", bgFraudar.Recall, hubFraudar.Recall)
	}
	// Signal-based attribution dominates on both.
	if hubSig.Recall < 0.95 || bgSig.Recall < 0.95 {
		t.Errorf("signature recall hub=%.2f bg=%.2f, want ≈1.0", hubSig.Recall, bgSig.Recall)
	}
	if bgSig.Recall <= bgFraudar.Recall {
		t.Error("signals should beat the graph baseline on reciprocity abuse")
	}
	if hubSig.Precision < 0.99 || bgSig.Precision < 0.99 {
		t.Errorf("signature precision hub=%.2f bg=%.2f", hubSig.Precision, bgSig.Precision)
	}
}

func TestBusinessOverlapStats(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second integration test")
	}
	cfg := TestConfig()
	cfg.Days = 30
	cfg.Scale = 1.0 / 500
	w := NewWorld(cfg)
	res, err := w.BusinessStudy()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range res.Table6 {
		total += s.Customers
	}
	// §5.1: "overall, account overlap is small" — but present.
	if res.Overlap.RecipAndCollusion == 0 {
		t.Error("no reciprocity+Hublaagram overlap at all")
	}
	if frac := float64(res.Overlap.RecipAndCollusion) / float64(total); frac > 0.05 {
		t.Errorf("overlap fraction %.3f, should be small", frac)
	}
	if res.Overlap.AllThree > res.Overlap.RecipAndCollusion {
		t.Error("three-way overlap exceeds two-way")
	}
	if !strings.Contains(FormatBusiness(res), "multi-service overlap") {
		t.Error("report missing overlap line")
	}
}

func TestExportBusinessAndIntervention(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second integration test")
	}
	dir := t.TempDir()
	cfg := TestConfig()
	cfg.Days = 25
	cfg.Scale = 1.0 / 1000
	cfg.ScaleOverride = map[string]float64{aas.NameHublaagram: 2}
	w := NewWorld(cfg)
	res, err := w.BusinessStudy()
	if err != nil {
		t.Fatal(err)
	}
	if err := ExportBusiness(res, dir); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"table6.tsv", "table7.tsv", "table8.tsv", "table9.tsv",
		"table10.tsv", "table11.tsv", "figure2.tsv", "figure3.tsv", "figure4.tsv"} {
		data, err := os.ReadFile(dir + "/" + f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if len(strings.Split(strings.TrimSpace(string(data)), "\n")) < 2 {
			t.Fatalf("%s has no data rows", f)
		}
	}
	// Figure 3 series rows are monotone CDF points.
	f3, _ := os.ReadFile(dir + "/figure3.tsv")
	if !strings.HasPrefix(string(f3), "sample\tx\tcdf\n") {
		t.Fatalf("figure3 header: %q", strings.SplitN(string(f3), "\n", 2)[0])
	}

	// Intervention export.
	w2 := NewWorld(benchNarrowCfg())
	ires, err := w2.NarrowIntervention(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ExportIntervention(ires, dir); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"figure5.tsv", "figure6.tsv", "figure7.tsv",
		"figure3.svg", "figure4.svg", "figure5.svg", "figure6.svg", "figure7.svg"} {
		if _, err := os.Stat(dir + "/" + f); err != nil {
			t.Fatalf("%s missing: %v", f, err)
		}
	}
	svg, err := os.ReadFile(dir + "/figure5.svg")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(svg), "<svg") || !strings.Contains(string(svg), "polyline") {
		t.Fatal("figure5.svg is not a rendered chart")
	}
}

// benchNarrowCfg is a small intervention config shared by export tests.
func benchNarrowCfg() Config {
	cfg := TestConfig()
	cfg.Days = 2 + 4 + 7
	cfg.Scale = 1.0 / 200
	cfg.ScaleOverride = map[string]float64{
		aas.NameHublaagram: 0.08,
		aas.NameInstalex:   0.15,
		aas.NameInstazood:  0.15,
	}
	return cfg
}

func TestSignalDriftChecks(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second integration test")
	}
	cfg := TestConfig()
	cfg.Days = 27
	cfg.Scale = 1.0 / 2000
	w := NewWorld(cfg)
	res, err := w.BusinessStudy()
	if err != nil {
		t.Fatal(err)
	}
	if res.DriftChecks == 0 {
		t.Fatal("no drift checks ran")
	}
	if res.DriftFailures != 0 {
		t.Fatalf("%d of %d drift checks misattributed — signals changed mid-study", res.DriftFailures, res.DriftChecks)
	}
}

func TestComplaintAsymmetry(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second integration test")
	}
	cfg := TestConfig()
	cfg.Days = 30
	cfg.Scale = 1.0 / 100
	cfg.ScaleOverride = map[string]float64{
		aas.NameHublaagram: 0.08,
		aas.NameInstalex:   0.15,
		aas.NameInstazood:  0.15,
	}
	w := NewWorld(cfg)
	res, err := w.NarrowIntervention(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	block := res.Complaints[intervention.AssignBlock]
	delay := res.Complaints[intervention.AssignDelay]
	if block == 0 {
		t.Fatal("sustained blocking drew no complaints")
	}
	// §7: deferred interventions "are less likely to drive the customer
	// complaints that incentivize services to pursue adaptations".
	if delay >= block {
		t.Fatalf("delay complaints %d >= block complaints %d", delay, block)
	}
	if !strings.Contains(FormatIntervention(res), "complaints") {
		t.Fatal("report missing complaint line")
	}
}

func TestReplicateReciprocationStability(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed integration test")
	}
	cfg := TestConfig()
	cfg.GraphWrites = true
	cfg.PoolSize = 1200
	rep, err := ReplicateReciprocation(cfg, []uint64{1, 2, 3}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Seeds) != 3 {
		t.Fatalf("seeds %v", rep.Seeds)
	}
	mean, std, ok := rep.Summary("Boostgram/E/follow→follow")
	if !ok {
		t.Fatalf("metric missing; have %v", rep.MetricNames())
	}
	// The measurement is stable across seeds: mean in the paper's band,
	// spread small relative to the mean.
	if mean < 0.06 || mean > 0.18 {
		t.Fatalf("mean follow reciprocation %.4f", mean)
	}
	if std > mean {
		t.Fatalf("cross-seed stddev %.4f exceeds mean %.4f", std, mean)
	}
	// Cross-channel zero invariant holds on every seed.
	for _, v := range rep.Metrics["Boostgram/E/follow→like"] {
		if v > 0.001 {
			t.Fatalf("follow→like %v on some seed", v)
		}
	}
	if !strings.Contains(rep.Format(), "replication across 3 seeds") {
		t.Fatal("Format header missing")
	}
}

func TestReplicateErrorPropagates(t *testing.T) {
	cfg := TestConfig()
	_, err := Replicate(cfg, []uint64{7}, func(w *World) (map[string]float64, error) {
		return nil, fmt.Errorf("boom")
	})
	if err == nil || !strings.Contains(err.Error(), "seed 7") {
		t.Fatalf("err = %v", err)
	}
}

func TestReplicationSummaryEdgeCases(t *testing.T) {
	r := &Replication{Metrics: map[string][]float64{"one": {5}}}
	mean, std, ok := r.Summary("one")
	if !ok || mean != 5 || std != 0 {
		t.Fatalf("single-sample summary %v %v %v", mean, std, ok)
	}
	if _, _, ok := r.Summary("missing"); ok {
		t.Fatal("missing metric reported ok")
	}
}

func TestEngagementStudyUplift(t *testing.T) {
	cfg := TestConfig()
	cfg.GraphWrites = true
	w := NewWorld(cfg)
	res, err := w.EngagementStudy(12, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.ControlER <= 0 {
		t.Fatalf("control ER %v — organic baseline missing", res.ControlER)
	}
	// Paid like tiers multiply the metric the services sell against.
	if res.Uplift < 3 {
		t.Fatalf("engagement uplift %.2f×, want several-fold (treated %.2f vs control %.2f)",
			res.Uplift, res.TreatedER, res.ControlER)
	}
}

func TestEngagementStudyNeedsGraph(t *testing.T) {
	cfg := TestConfig() // GraphWrites false
	w := NewWorld(cfg)
	if _, err := w.EngagementStudy(2, 2); err == nil {
		t.Fatal("stateless world accepted an engagement study")
	}
}

func TestCalibrationChecksPass(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second integration test")
	}
	// Table 5 checks.
	cfgA := TestConfig()
	cfgA.GraphWrites = true
	cfgA.PoolSize = 1500
	wA := NewWorld(cfgA)
	tbl, err := wA.ReciprocationStudy(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	report, ok := FormatFindings(CheckTable5(tbl))
	if !ok {
		t.Fatalf("Table 5 calibration failed:\n%s", report)
	}

	// Business checks.
	cfgB := TestConfig()
	cfgB.Days = 45
	cfgB.Scale = 1.0 / 2000
	cfgB.ScaleOverride = map[string]float64{aas.NameHublaagram: 4}
	wB := NewWorld(cfgB)
	res, err := wB.BusinessStudy()
	if err != nil {
		t.Fatal(err)
	}
	report, ok = FormatFindings(CheckBusiness(res))
	if !ok {
		t.Fatalf("business calibration failed:\n%s", report)
	}
}

func TestFormatFindings(t *testing.T) {
	out, ok := FormatFindings([]Finding{
		{Name: "a", OK: true, Detail: "fine"},
		{Name: "b", OK: false, Detail: "broken"},
	})
	if ok {
		t.Fatal("overall OK with a failing finding")
	}
	if !strings.Contains(out, "[PASS] a") || !strings.Contains(out, "[FAIL] b") {
		t.Fatalf("report:\n%s", out)
	}
}

func TestStabilitySeries(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second integration test")
	}
	cfg := TestConfig()
	cfg.Days = 40
	cfg.Scale = 1.0 / 800
	w := NewWorld(cfg)
	res, err := w.BusinessStudy()
	if err != nil {
		t.Fatal(err)
	}
	ss, ok := res.Stability[LabelInstaStar]
	if !ok || len(ss.ActivePerDay) != 40 {
		t.Fatalf("stability series missing: %+v", ss)
	}
	// The long-term population is alive through the middle of the window.
	if ss.ActivePerDay[20] == 0 {
		t.Fatal("no active long-term customers mid-window")
	}
	// Births occur past day 0 (arrivals convert), and Insta* grows:
	// births at least match deaths (paper: >10% growth).
	if ss.MeanBirthRate() <= 0 {
		t.Fatalf("no long-term births: %+v", ss.Births)
	}
	if ss.MeanBirthRate() < ss.MeanDeathRate()*0.5 {
		t.Fatalf("Insta* shrinking hard: births %.2f deaths %.2f",
			ss.MeanBirthRate(), ss.MeanDeathRate())
	}
	if !strings.Contains(FormatBusiness(res), "birth and death rates") {
		t.Fatal("report missing stability table")
	}
}
