package core

import (
	"math"
	"os"
	"path/filepath"
	"sort"

	"footsteps/internal/intervention"
	"footsteps/internal/plot"
	"footsteps/internal/stats"
)

// ExportInterventionSVG renders Figures 5–7 as SVG files in dir.
func ExportInterventionSVG(res *InterventionResults, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	days := func(n int) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i)
		}
		return xs
	}
	values := func(s DailySeries) []float64 {
		ys := make([]float64, len(s.Values))
		for i := range ys {
			if s.Seen[i] {
				ys[i] = s.Values[i]
			} else {
				ys[i] = math.NaN()
			}
		}
		return ys
	}

	fig5 := plot.Chart{
		Title:  "Figure 5: Boostgram median follows per user per day",
		XLabel: "experiment day",
		YLabel: "median follows/user",
		HLine:  res.Figure5.Threshold,
		Series: []plot.Series{
			{Name: "block", X: days(res.Figure5.Days), Y: values(res.Figure5.Block)},
			{Name: "delay", X: days(res.Figure5.Days), Y: values(res.Figure5.Delay), Dashed: true},
			{Name: "control", X: days(res.Figure5.Days), Y: values(res.Figure5.Control)},
		},
	}
	if err := os.WriteFile(filepath.Join(dir, "figure5.svg"), []byte(fig5.SVG()), 0o644); err != nil {
		return err
	}

	elig := func(title string, s EligibilitySeries) plot.Chart {
		return plot.Chart{
			Title:  title,
			XLabel: "experiment day",
			YLabel: "eligible fraction",
			HLine:  math.NaN(),
			Series: []plot.Series{
				{Name: "block", X: days(s.Days), Y: values(s.Arms[intervention.AssignBlock])},
				{Name: "delay", X: days(s.Days), Y: values(s.Arms[intervention.AssignDelay]), Dashed: true},
				{Name: "control", X: days(s.Days), Y: values(s.Arms[intervention.AssignControl])},
			},
		}
	}
	fig6 := elig("Figure 6: Hublaagram likes eligible for countermeasure", res.Figure6)
	if err := os.WriteFile(filepath.Join(dir, "figure6.svg"), []byte(fig6.SVG()), 0o644); err != nil {
		return err
	}
	fig7 := elig("Figure 7: Boostgram follows eligible for countermeasure", res.Figure7)
	return os.WriteFile(filepath.Join(dir, "figure7.svg"), []byte(fig7.SVG()), 0o644)
}

// ExportBusinessSVG renders the Figure 3/4 CDFs as SVG files in dir.
func ExportBusinessSVG(res *BusinessResults, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	render := func(title, xlabel string, cdfs map[string]*stats.CDF) plot.Chart {
		labels := make([]string, 0, len(cdfs))
		for l := range cdfs {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		ch := plot.Chart{Title: title, XLabel: xlabel, YLabel: "CDF", HLine: math.NaN()}
		for _, l := range labels {
			pts := cdfs[l].Series(64)
			xs := make([]float64, len(pts))
			ys := make([]float64, len(pts))
			for i, p := range pts {
				xs[i], ys[i] = p.X, p.Y
			}
			ch.Series = append(ch.Series, plot.Series{Name: l, X: xs, Y: ys, Dashed: l == "Random"})
		}
		return ch
	}
	fig3 := render("Figure 3: accounts followed by targets (out-degree)", "accounts followed", res.Figure3)
	if err := os.WriteFile(filepath.Join(dir, "figure3.svg"), []byte(fig3.SVG()), 0o644); err != nil {
		return err
	}
	fig4 := render("Figure 4: followers of targets (in-degree)", "followers", res.Figure4)
	return os.WriteFile(filepath.Join(dir, "figure4.svg"), []byte(fig4.SVG()), 0o644)
}
