package core

import (
	"fmt"
	"time"

	"footsteps/internal/aas"
	"footsteps/internal/clock"
	"footsteps/internal/platform"
	"footsteps/internal/stats"
)

// EngagementResults quantifies what customers buy: the lift in the
// "engagement rate" metric the services promote (§2),
//
//	ER = (likes + comments on the user's posts) / followers,
//
// for accounts enrolled in a paid like tier versus identical control
// accounts.
type EngagementResults struct {
	TreatedER float64 // mean ER of enrolled accounts
	ControlER float64 // mean ER of identical unenrolled accounts
	Uplift    float64 // TreatedER / ControlER (Inf when control is 0)
}

// EngagementStudy builds n treated + n control wannabe-influencer
// accounts (each with organic followers), enrolls the treated half in
// Hublaagram's lowest monthly like tier, runs for days, and measures the
// engagement-rate gap. Requires cfg.GraphWrites — the ER formula needs
// real follower counts.
func (w *World) EngagementStudy(n, days int) (*EngagementResults, error) {
	if !w.Cfg.GraphWrites {
		return nil, fmt.Errorf("core: EngagementStudy needs Config.GraphWrites")
	}
	hubla, ok := w.Coll[aas.NameHublaagram]
	if !ok {
		return nil, fmt.Errorf("core: no collusion service in world")
	}

	r := w.RNG.Split("engagement")
	makeInfluencer := func(tag string, i int) (platform.AccountID, *platform.Session, error) {
		name := fmt.Sprintf("wannabe-%s-%d", tag, i)
		id, err := w.Plat.RegisterAccount(name, "pw-"+name, platform.Profile{
			PhotoCount: 6, HasProfilePic: true, HasBio: true, HasName: true,
		}, "USA")
		if err != nil {
			return 0, nil, err
		}
		sess, err := w.Plat.Login(name, "pw-"+name, platform.ClientInfo{
			IP: w.Reg.Allocate(aas.ASNResUSA), Fingerprint: "mobile-official",
		})
		if err != nil {
			return 0, nil, err
		}
		// Organic audience: 30–60 followers with a sprinkle of organic
		// likes on the profile photos.
		followers := 30 + r.Intn(31)
		for f := 0; f < followers; f++ {
			fname := fmt.Sprintf("fan-%s-%d-%d", tag, i, f)
			if _, err := w.Plat.RegisterAccount(fname, "pw-"+fname, platform.Profile{PhotoCount: 1}, "USA"); err != nil {
				return 0, nil, err
			}
			fs, err := w.Plat.Login(fname, "pw-"+fname, platform.ClientInfo{
				IP: w.Reg.Allocate(aas.ASNResUSA), Fingerprint: "mobile-official",
			})
			if err != nil {
				return 0, nil, err
			}
			fs.Do(platform.Request{Action: platform.ActionFollow, Target: id})
			if r.Bool(0.25) {
				if pid, ok := w.Plat.LatestPost(id); ok {
					fs.Do(platform.Request{Action: platform.ActionLike, Post: pid})
				}
			}
		}
		return id, sess, nil
	}

	treated := make([]platform.AccountID, 0, n)
	control := make([]platform.AccountID, 0, n)
	var customers []*aas.Customer
	var sessions []*platform.Session
	for i := 0; i < n; i++ {
		idT, sessT, err := makeInfluencer("t", i)
		if err != nil {
			return nil, err
		}
		idC, sessC, err := makeInfluencer("c", i)
		if err != nil {
			return nil, err
		}
		treated = append(treated, idT)
		control = append(control, idC)
		sessions = append(sessions, sessT, sessC)

		nameT, _ := w.Plat.Username(idT)
		c, err := hubla.EnrollFree(nameT, "pw-"+nameT)
		if err != nil {
			return nil, err
		}
		c.EngagedUntil = c.EnrolledAt.Add(time.Duration(days+1) * clock.Day)
		if err := hubla.PurchaseTier(c, 0); err != nil { // 250–500 likes/photo
			return nil, err
		}
		customers = append(customers, c)
	}

	// Both cohorts post every other day; the service delivers onto the
	// treated cohort's new photos.
	hubla.StartLifecycle(days, 0)
	w.Sched.EveryDay(12*time.Hour, days, func(day int) {
		for i, sess := range sessions {
			if (day+i)%2 == 0 {
				if resp := sess.Do(platform.Request{Action: platform.ActionPost}); resp.Err == nil {
					pid := resp.Post
					// Tier delivery for treated accounts (index even).
					if i%2 == 0 {
						cust := customers[i/2]
						tier := hubla.Spec().Collusion.MonthlyTiers[cust.Tier]
						hubla.DeliverTier(cust, pid, tier)
					}
				}
			}
		}
	})
	w.Sched.RunFor(time.Duration(days) * clock.Day)

	er := func(ids []platform.AccountID) float64 {
		vals := make([]float64, 0, len(ids))
		for _, id := range ids {
			vals = append(vals, w.Plat.Graph().EngagementRate(id))
		}
		return stats.Mean(vals)
	}
	res := &EngagementResults{TreatedER: er(treated), ControlER: er(control)}
	if res.ControlER > 0 {
		res.Uplift = res.TreatedER / res.ControlER
	}
	return res, nil
}
