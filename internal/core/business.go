package core

import (
	"sort"
	"time"

	"footsteps/internal/aas"
	"footsteps/internal/clock"
	"footsteps/internal/detection"
	"footsteps/internal/honeypot"
	"footsteps/internal/netsim"
	"footsteps/internal/platform"
	"footsteps/internal/revenue"
	"footsteps/internal/stats"
)

// Table7Row is one service's location row.
type Table7Row struct {
	Label            string
	OperatingCountry string
	ASNCountries     []string
}

// BusinessResults bundles everything §5 reports: Tables 6–11 and
// Figures 2–4.
type BusinessResults struct {
	Classifier *detection.Classifier
	Tracker    *detection.Tracker
	WindowDays int

	// Table 6: customer split per label.
	Table6 map[string]revenue.Split
	// §5.1 narrative numbers: first-month long-term conversion rate and
	// long-term population growth across the window.
	Conversion map[string]float64
	Growth     map[string]float64

	// Table 7 rows in catalog order.
	Table7 []Table7Row

	// Figure 2: customer country shares per label.
	Figure2 map[string][]netsim.CountryFraction

	// Table 8: reciprocity revenue. Insta* carries a low/high range.
	Table8Boostgram revenue.ReciprocityEstimate
	Table8InstaLow  revenue.ReciprocityEstimate
	Table8InstaHigh revenue.ReciprocityEstimate

	// Table 9: Hublaagram revenue decomposition.
	Table9 revenue.CollusionEstimate

	// Table 10: new vs preexisting revenue share.
	Table10 map[string]revenue.NewVsPreexisting

	// Table 11: action mix per label, fractions summing to 1.
	Table11 map[string]map[platform.ActionType]float64

	// Figures 3/4: degree CDFs of AAS-targeted accounts vs random users.
	Figure3 map[string]*stats.CDF // out-degree (followees)
	Figure4 map[string]*stats.CDF // in-degree (followers)

	// Overlap: the §5.1 multi-service enrollment counts.
	Overlap OverlapStats

	// Signal drift re-verification (§5: "we also periodically register
	// additional trial honeypot accounts ... these signals are consistent
	// with our original honeypot accounts and also do not change").
	DriftChecks   int // classified events observed on drift honeypots
	DriftFailures int // events attributed to the wrong service

	// Stability: the §5.1 user-stability series per label — daily active
	// long-term customers plus long-term birth and death counts.
	Stability map[string]StabilitySeries
}

// StabilitySeries tracks one service's long-term population over the
// window: per-day active counts, first-appearance (birth) counts, and
// last-appearance (death) counts.
type StabilitySeries struct {
	ActivePerDay []int
	Births       []int
	Deaths       []int
}

// MeanBirthRate returns average long-term births per day over the middle
// of the window (edges are censored: early days absorb the initial cohort
// and late days cannot distinguish churn from the window ending).
func (s StabilitySeries) MeanBirthRate() float64 { return trimmedMean(s.Births) }

// MeanDeathRate returns average long-term deaths per day, middle-trimmed.
func (s StabilitySeries) MeanDeathRate() float64 { return trimmedMean(s.Deaths) }

func trimmedMean(xs []int) float64 {
	n := len(xs)
	if n < 6 {
		return 0
	}
	lo, hi := n/6, n-n/6
	sum := 0
	for _, v := range xs[lo:hi] {
		sum += v
	}
	return float64(sum) / float64(hi-lo)
}

// OverlapStats counts accounts enrolled with multiple services (§5.1).
type OverlapStats struct {
	AllThree          int // active in Insta*, Boostgram, and Hublaagram
	TwoReciprocity    int // in both reciprocity labels
	RecipAndCollusion int // in a reciprocity AAS and Hublaagram
}

// longTermRunDays returns the §5.1 long-term cutoff for a label.
func longTermRunDays(label string) int {
	if label == aas.NameHublaagram {
		return 4
	}
	return 7
}

// BusinessStudy runs the full §5 characterization: 2 warmup days to train
// the classifier from honeypots, then the cfg.Days measurement window with
// all services live, then every table and figure computed from the
// platform-side tracker. Run it on a fresh world.
func (w *World) BusinessStudy() (*BusinessResults, error) {
	classifier, err := w.TrainClassifier(2)
	if err != nil {
		return nil, err
	}
	windowStart := w.Plat.Now()
	tracker := detection.NewTracker(classifier, windowStart)
	tracker.WireTelemetry(w.Cfg.Telemetry)
	w.Plat.Log().Subscribe(tracker.Observe)

	drift := w.scheduleDriftChecks(classifier)

	w.RunAll()
	w.Sched.RunFor(time.Duration(w.Cfg.Days) * clock.Day)

	res := &BusinessResults{
		Classifier: classifier,
		Tracker:    tracker,
		WindowDays: w.Cfg.Days,
		Table6:     make(map[string]revenue.Split),
		Conversion: make(map[string]float64),
		Growth:     make(map[string]float64),
		Figure2:    make(map[string][]netsim.CountryFraction),
		Table10:    make(map[string]revenue.NewVsPreexisting),
		Table11:    make(map[string]map[platform.ActionType]float64),
		Figure3:    make(map[string]*stats.CDF),
		Figure4:    make(map[string]*stats.CDF),
	}

	for _, label := range tracker.Labels() {
		svc := tracker.Service(label)
		cutoff := longTermRunDays(label)
		collusion := label == aas.NameHublaagram || label == aas.NameFollowersgratis
		res.Table6[label] = revenue.LongTermSplit(svc, cutoff, collusion)
		res.Conversion[label] = conversionRate(svc, cutoff, w.Cfg.Days, collusion)
		res.Growth[label] = longTermGrowth(svc, cutoff, w.Cfg.Days, collusion)
		res.Figure2[label] = w.customerCountries(svc, collusion)
		res.Table11[label] = actionMix(svc)
	}

	// Table 7: catalog order, ASNs observed by the classifier.
	seen := make(map[string]bool)
	for _, spec := range aas.Catalog() {
		label := LabelFor(spec.Name)
		if seen[label] || tracker.Service(label) == nil {
			continue
		}
		seen[label] = true
		row := Table7Row{Label: label, OperatingCountry: spec.OperatingCountry}
		for asn := range tracker.Service(label).ASNs {
			if info, ok := w.Reg.Info(asn); ok {
				row.ASNCountries = append(row.ASNCountries, info.Country)
			}
		}
		sort.Strings(row.ASNCountries)
		res.Table7 = append(res.Table7, row)
	}

	// Revenue over the final 30 days (or the whole window if shorter).
	from := w.Cfg.Days - 30
	if from < 0 {
		from = 0
	}
	to := w.Cfg.Days
	if insta := tracker.Service(LabelInstaStar); insta != nil {
		res.Table8InstaLow = revenue.EstimateReciprocity(insta,
			aas.SpecByName(aas.NameInstazood).Reciprocity, from, to)
		res.Table8InstaHigh = revenue.EstimateReciprocity(insta,
			aas.SpecByName(aas.NameInstalex).Reciprocity, from, to)
		res.Table10[LabelInstaStar] = revenue.SplitNewVsPreexisting(insta,
			aas.SpecByName(aas.NameInstazood).Reciprocity, from)
	}
	if bg := tracker.Service(aas.NameBoostgram); bg != nil {
		pricing := aas.SpecByName(aas.NameBoostgram).Reciprocity
		res.Table8Boostgram = revenue.EstimateReciprocity(bg, pricing, from, to)
		res.Table10[aas.NameBoostgram] = revenue.SplitNewVsPreexisting(bg, pricing, from)
	}
	if hb := tracker.Service(aas.NameHublaagram); hb != nil {
		pricing := aas.SpecByName(aas.NameHublaagram).Collusion
		res.Table9 = revenue.EstimateCollusion(hb, pricing, w.Cfg.Days)
		res.Table9.NoOutboundRevenue = float64(res.Table9.NoOutboundAccounts) * pricing.NoOutboundFee
		res.Table10[aas.NameHublaagram] = revenue.SplitCollusionNewVsPreexisting(hb, pricing, from)
	}

	// Figures 3/4: up to 1,000 targeted accounts per reciprocity label vs
	// 1,000 random organic users.
	for _, label := range []string{LabelInstaStar, aas.NameBoostgram} {
		svc := tracker.Service(label)
		if svc == nil {
			continue
		}
		targets := make([]platform.AccountID, 0, len(svc.Targets))
		for id := range svc.Targets {
			if w.Pop.IsMember(id) {
				targets = append(targets, id)
			}
		}
		sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
		if len(targets) > 1000 {
			idx := w.RNG.Split("fig34-"+label).Sample(len(targets), 1000)
			sampled := make([]platform.AccountID, len(idx))
			for i, j := range idx {
				sampled[i] = targets[j]
			}
			targets = sampled
		}
		res.Figure3[label] = stats.NewCDFInts(w.Pop.OutDegrees(targets))
		res.Figure4[label] = stats.NewCDFInts(w.Pop.InDegrees(targets))
	}
	random := w.Pop.RandomSample(1000)
	res.Figure3["Random"] = stats.NewCDFInts(w.Pop.OutDegrees(random))
	res.Figure4["Random"] = stats.NewCDFInts(w.Pop.InDegrees(random))

	res.Overlap = overlapStats(tracker)
	res.DriftChecks, res.DriftFailures = drift.checks(), drift.failures()
	res.Stability = stabilitySeries(tracker, w.Cfg.Days)
	return res, nil
}

// stabilitySeries computes the §5.1 per-day long-term population series.
func stabilitySeries(tracker *detection.Tracker, days int) map[string]StabilitySeries {
	out := make(map[string]StabilitySeries)
	for _, label := range tracker.Labels() {
		svc := tracker.Service(label)
		cutoff := longTermRunDays(label)
		collusion := label == aas.NameHublaagram || label == aas.NameFollowersgratis
		ss := StabilitySeries{
			ActivePerDay: make([]int, days),
			Births:       make([]int, days),
			Deaths:       make([]int, days),
		}
		var dayBuf []int
		for _, a := range svc.ByAccount {
			if !a.HasOutbound() && !collusion {
				continue
			}
			if a.MaxConsecutiveDays() <= cutoff {
				continue
			}
			dayBuf = a.AppendActiveDays(dayBuf[:0])
			active := dayBuf
			if len(active) == 0 {
				continue
			}
			for _, d := range active {
				if d >= 0 && d < days {
					ss.ActivePerDay[d]++
				}
			}
			if f := active[0]; f >= 0 && f < days {
				ss.Births[f]++
			}
			if l := active[len(active)-1]; l >= 0 && l < days {
				ss.Deaths[l]++
			}
		}
		out[label] = ss
	}
	return out
}

// driftMonitor tracks signal-consistency checks on re-registered
// honeypots.
type driftMonitor struct {
	expected map[platform.AccountID]string
	nChecks  int
	nFail    int
}

func (d *driftMonitor) checks() int   { return d.nChecks }
func (d *driftMonitor) failures() int { return d.nFail }

// scheduleDriftChecks periodically registers fresh trial honeypots with
// each service and verifies their traffic still classifies to the same
// label, deleting each honeypot a day after its service starts driving it.
func (w *World) scheduleDriftChecks(classifier *detection.Classifier) *driftMonitor {
	d := &driftMonitor{expected: make(map[platform.AccountID]string)}
	w.Plat.Log().Subscribe(func(ev platform.Event) {
		want, ok := d.expected[ev.Actor]
		if !ok || ev.Type == platform.ActionLogin || ev.Client == "mobile-official" {
			return
		}
		d.nChecks++
		if got, ok := classifier.Classify(ev); !ok || got != want {
			d.nFail++
		}
	})
	if w.Cfg.Days < 9 {
		return d
	}
	for _, frac := range []int{3, 3 * 2} {
		day := w.Cfg.Days * frac / 9 // days/3 and 2*days/3
		w.Sched.After(time.Duration(day)*clock.Day+5*time.Hour, func() {
			for _, name := range w.ServiceNames() {
				hp, err := w.Honeypots.Create(honeypot.Empty)
				if err != nil {
					continue
				}
				if svc, ok := w.Recip[name]; ok {
					if _, err := svc.EnrollTrial(hp.Username, hp.Password, aas.OfferLike); err != nil {
						continue
					}
				} else if svc, ok := w.Coll[name]; ok {
					c, err := svc.EnrollFree(hp.Username, hp.Password, aas.OfferLike)
					if err != nil {
						continue
					}
					svc.RequestFree(c, aas.OfferLike)
				}
				w.Honeypots.MarkEnrolled(hp, name)
				d.expected[hp.ID] = LabelFor(name)
				// Delete shortly after the service starts driving it.
				hpRef := hp
				w.Sched.After(26*time.Hour, func() {
					delete(d.expected, hpRef.ID)
					w.Honeypots.Delete(hpRef)
				})
			}
		})
	}
	return d
}

// overlapStats computes the §5.1 multi-service enrollment counts from the
// tracker's per-label customer sets.
func overlapStats(tracker *detection.Tracker) OverlapStats {
	customersOf := func(label string, includeInboundOnly bool) map[platform.AccountID]bool {
		out := make(map[platform.AccountID]bool)
		if svc := tracker.Service(label); svc != nil {
			for id, a := range svc.ByAccount {
				if a.HasOutbound() || includeInboundOnly {
					out[id] = true
				}
			}
		}
		return out
	}
	insta := customersOf(LabelInstaStar, false)
	boost := customersOf(aas.NameBoostgram, false)
	hubla := customersOf(aas.NameHublaagram, true)

	var o OverlapStats
	for id := range insta {
		inBoost, inHubla := boost[id], hubla[id]
		if inBoost {
			o.TwoReciprocity++
		}
		if inBoost && inHubla {
			o.AllThree++
		}
		if inHubla {
			o.RecipAndCollusion++
		}
	}
	for id := range boost {
		if hubla[id] && !insta[id] {
			o.RecipAndCollusion++
		}
	}
	return o
}

// conversionRate estimates the fraction of customers first seen in the
// window's first month that became long-term (§5.1).
func conversionRate(svc *detection.ServiceActivity, cutoff, windowDays int, includeInboundOnly bool) float64 {
	horizon := 30
	if windowDays < horizon {
		horizon = windowDays
	}
	var newcomers, converted int
	var dayBuf []int
	for _, a := range svc.ByAccount {
		if !a.HasOutbound() && !includeInboundOnly {
			continue
		}
		dayBuf = a.AppendActiveDays(dayBuf[:0])
		days := dayBuf
		if len(days) == 0 || days[0] <= 1 || days[0] >= horizon {
			continue // active from the start = preexisting, or too late
		}
		newcomers++
		if a.MaxConsecutiveDays() > cutoff {
			converted++
		}
	}
	if newcomers == 0 {
		return 0
	}
	return float64(converted) / float64(newcomers)
}

// longTermGrowth compares the count of active long-term customers in an
// early-window day band against a late-window band; positive values mean
// the service grew.
func longTermGrowth(svc *detection.ServiceActivity, cutoff, windowDays int, includeInboundOnly bool) float64 {
	if windowDays < 20 {
		return 0
	}
	earlyDay := windowDays / 6
	lateDay := windowDays - windowDays/6
	var early, late int
	var dayBuf []int
	for _, a := range svc.ByAccount {
		if !a.HasOutbound() && !includeInboundOnly {
			continue
		}
		if a.MaxConsecutiveDays() <= cutoff {
			continue
		}
		dayBuf = a.AppendActiveDays(dayBuf[:0])
		days := dayBuf
		if len(days) == 0 {
			continue
		}
		if days[0] <= earlyDay && days[len(days)-1] >= earlyDay {
			early++
		}
		if days[0] <= lateDay && days[len(days)-1] >= lateDay {
			late++
		}
	}
	if early == 0 {
		return 0
	}
	return float64(late-early) / float64(early)
}

// customerCountries computes the Figure 2 distribution: the most frequent
// login country of each identified customer, with sub-5% countries folded
// into OTHER.
func (w *World) customerCountries(svc *detection.ServiceActivity, includeInboundOnly bool) []netsim.CountryFraction {
	counts := make(map[string]int)
	total := 0
	for id, a := range svc.ByAccount {
		if !a.HasOutbound() && !includeInboundOnly {
			continue
		}
		c, ok := w.Plat.MostFrequentLoginCountry(id)
		if !ok || c == "" {
			c = "OTHER"
		}
		counts[c]++
		total++
	}
	if total == 0 {
		return nil
	}
	other := 0
	var out []netsim.CountryFraction
	for c, n := range counts {
		frac := float64(n) / float64(total)
		if c == "OTHER" || frac < 0.05 {
			other += n
			continue
		}
		out = append(out, netsim.CountryFraction{Country: c, Fraction: frac})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fraction != out[j].Fraction {
			return out[i].Fraction > out[j].Fraction
		}
		return out[i].Country < out[j].Country
	})
	if other > 0 {
		out = append(out, netsim.CountryFraction{Country: "OTHER", Fraction: float64(other) / float64(total)})
	}
	return out
}

// actionMix normalizes a service's action-type counts (Table 11).
func actionMix(svc *detection.ServiceActivity) map[platform.ActionType]float64 {
	total := 0
	for t, n := range svc.Actions {
		if t == platform.ActionLogin {
			continue
		}
		total += n
	}
	out := make(map[platform.ActionType]float64)
	if total == 0 {
		return out
	}
	for t, n := range svc.Actions {
		if t == platform.ActionLogin || n == 0 {
			continue
		}
		out[t] = float64(n) / float64(total)
	}
	return out
}
