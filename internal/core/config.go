// Package core orchestrates the full study: it assembles the simulated
// world (platform, organic population, the five AASs, honeypot framework),
// runs the paper's experiments, and renders every table and figure of the
// evaluation. See DESIGN.md for the experiment-to-module index.
package core

import (
	"fmt"
	"hash/fnv"
	"sort"

	"footsteps/internal/faults"
	"footsteps/internal/telemetry"
	"footsteps/internal/trace"
)

// Config sizes a study world. The zero value is unusable; start from
// DefaultConfig or TestConfig.
type Config struct {
	// Seed drives every stochastic choice; equal seeds replay identical
	// studies.
	Seed uint64

	// Scale multiplies the paper-scale customer dynamics (1.0 would be
	// Instagram-sized; the default harness runs 1/500).
	Scale float64

	// Days is the measurement window length (the paper used 90).
	Days int

	// OrganicPopulation is the general-population size used for random
	// baselines (Figures 3/4).
	OrganicPopulation int

	// PoolSize is each reciprocity service's curated target pool size.
	PoolSize int

	// VPNUsers is the number of benign users routing through the cloud
	// ASN that Hublaagram also uses — the "benign traffic blended in"
	// that forces the 99th-percentile threshold rule on mixed ASNs (§6.2).
	VPNUsers int

	// GraphWrites enables full social-graph fidelity. Population-scale
	// business studies turn it off and work from the event stream.
	GraphWrites bool

	// IncludeFollowersgratis adds the fifth service. The paper drops it
	// from §5 onward ("very limited impact"); it stays available for the
	// user-experience studies.
	IncludeFollowersgratis bool

	// ScaleOverride multiplies Scale for individual services (by catalog
	// name). Useful to keep an experiment focused: the narrow-intervention
	// tests shrink Hublaagram's million-account base without touching the
	// service under study.
	ScaleOverride map[string]float64

	// IPDailyBudget is the pre-existing per-IP daily action cap (§5) that
	// had already neutered Followersgratis before the study. 0 disables
	// it. At simulation scale the default is generous enough that only
	// services concentrating volume on a handful of addresses feel it.
	IPDailyBudget int

	// Workers bounds the goroutines used for per-tick intent planning.
	// 0 or 1 steps the world sequentially. Any value produces the same
	// event stream for the same seed — worker count changes wall-clock
	// time, never bytes (see docs/DETERMINISM.md).
	Workers int

	// Shards is the lock-stripe count for the platform's and social
	// graph's mutable state. 0 means the built-in default. Like Workers,
	// it is a pure concurrency knob: any shard count produces the same
	// event stream for the same seed (see docs/ARCHITECTURE.md).
	Shards int

	// Telemetry, when non-nil, receives counters, gauges, and tick-phase
	// histograms from every layer of the world. Telemetry is a pure
	// observer: it consumes no RNG draws and feeds nothing back into the
	// simulation, so the event stream is byte-identical with it on or off
	// (see docs/OBSERVABILITY.md). nil disables instrumentation.
	Telemetry *telemetry.Registry

	// DisableScratchReuse turns off cross-tick reuse of planning scratch
	// (intent buffers, chunk bounds, customer filter slices) throughout
	// the world, restoring fresh per-tick allocations. Reuse is a pure
	// memory optimization — the event stream is byte-identical either
	// way, pinned by the pooling property test in internal/simtest. The
	// knob exists for that test and for bisecting suspected scratch
	// leaks; leave it off (reuse on) otherwise.
	DisableScratchReuse bool

	// Faults, when non-nil, schedules deterministic infrastructure
	// faults — transient unavailability, session-store flaps, ASN
	// outages, rate-limit storms — injected by the platform on every
	// request (see docs/FAULTS.md). nil (the default) disables
	// injection; a faults-off run is byte-identical to a build without
	// the fault layer, and any faulted run is byte-identical across
	// worker counts.
	Faults *faults.Profile

	// Trace, when non-nil, streams deterministic span records from every
	// layer of the world — request pipeline stages, tick sections, AAS
	// retries and breaker transitions, enforcement decisions — to the
	// tracer's FTRC1 sink. Like Telemetry it is a pure observer: span
	// identity derives from (tick, seq), the sampler is a pure function
	// of (seed, identity), and nothing feeds back, so the event stream
	// and report are byte-identical with tracing on or off at any sample
	// rate (see docs/OBSERVABILITY.md). nil disables tracing.
	Trace *trace.Tracer

	// CheckpointEvery makes World.RunDays write a snapshot after every
	// N completed days (see docs/PERSISTENCE.md). 0 disables. Like
	// Workers and Shards it never changes the event stream, only what
	// gets written to disk alongside it.
	CheckpointEvery int

	// CheckpointDir is where periodic checkpoints land. Empty disables
	// checkpointing even when CheckpointEvery is set.
	CheckpointDir string

	// Serving-layer knobs (internal/server, cmd/footsteps serve — see
	// docs/API.md). All of them shape how network ingress reaches the
	// world loop, never what the world does with it, so like Workers and
	// Shards they are excluded from Fingerprint and a snapshot taken
	// under one serving config restores under any other.

	// ServeAddr is the listen address for the HTTP/WS front end
	// (host:port). Empty means serving is off.
	ServeAddr string

	// ServeQueueDepth bounds the ingress queue between handler
	// goroutines and the world loop. A full queue fails requests with
	// the wire "overloaded" code instead of blocking handlers.
	// 0 means the server default.
	ServeQueueDepth int

	// ServePace is how many simulated seconds elapse per wall-clock
	// second while serving (1.0 = real time; 0 means the server
	// default). Pacing only chooses the drain instants; the recorded
	// ingress log replays identically at any pace.
	ServePace float64

	// ServeMaxBatch caps how many queued envelopes one drain applies
	// (0 means the server default). Bounding the batch keeps worst-case
	// drain latency flat under load; the remainder stays queued for the
	// next drain.
	ServeMaxBatch int

	// ServeIngressLog, when non-empty, records every admitted envelope
	// with its drain instant to this FING1 file, making the served run
	// replayable (cmd/footsteps replay -ingress-log).
	ServeIngressLog string
}

// Fingerprint hashes every semantic config field — the knobs that shape
// the simulated timeline. Pure performance and observability knobs
// (Workers, Shards, Telemetry, Trace, DisableScratchReuse, the checkpoint
// settings) are excluded, so a snapshot taken at one worker or shard
// count restores at any other. Seed is also excluded: it travels in the
// snapshot header as its own field with its own mismatch diagnostic.
func (c Config) Fingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "scale=%g days=%d pop=%d pool=%d vpn=%d graph=%t fgratis=%t ipbudget=%d",
		c.Scale, c.Days, c.OrganicPopulation, c.PoolSize, c.VPNUsers,
		c.GraphWrites, c.IncludeFollowersgratis, c.IPDailyBudget)
	names := make([]string, 0, len(c.ScaleOverride))
	for name := range c.ScaleOverride {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(h, " so:%s=%g", name, c.ScaleOverride[name])
	}
	if c.Faults != nil {
		fmt.Fprintf(h, " faults=%+v", *c.Faults)
	}
	return h.Sum64()
}

// scaleFor returns the effective customer-dynamics scale for a service.
func (c Config) scaleFor(name string) float64 {
	s := c.Scale
	if o, ok := c.ScaleOverride[name]; ok {
		s *= o
	}
	return s
}

// DefaultConfig is the harness scale: 1/500 of the paper's populations,
// the full 90-day window.
func DefaultConfig() Config {
	return Config{
		Seed:              1,
		Scale:             1.0 / 500,
		Days:              90,
		OrganicPopulation: 4000,
		PoolSize:          3000,
		VPNUsers:          150,
		GraphWrites:       false,
		IPDailyBudget:     2000,
	}
}

// TestConfig is small enough for unit tests: 1/5000 scale, 30 days.
func TestConfig() Config {
	return Config{
		Seed:              1,
		Scale:             1.0 / 5000,
		Days:              30,
		OrganicPopulation: 800,
		PoolSize:          600,
		VPNUsers:          40,
		GraphWrites:       false,
		IPDailyBudget:     2000,
	}
}
