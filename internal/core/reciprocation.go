package core

import (
	"fmt"
	"sort"
	"time"

	"footsteps/internal/aas"
	"footsteps/internal/clock"
	"footsteps/internal/honeypot"
	"footsteps/internal/platform"
)

// Table5Cell is one row of Table 5: the probability that an outbound
// action of DriveType from a Kind honeypot enrolled with Service induces
// a reciprocated inbound like / follow.
type Table5Cell struct {
	Service   string
	Kind      honeypot.Kind
	DriveType platform.ActionType

	Honeypots    int
	Outbound     int
	InLikeRate   float64
	InFollowRate float64
}

// Table5 is the full reciprocation-measurement result.
type Table5 struct {
	Cells []Table5Cell
}

// Cell finds one measurement cell.
func (t *Table5) Cell(service string, kind honeypot.Kind, drive platform.ActionType) (Table5Cell, bool) {
	for _, c := range t.Cells {
		if c.Service == service && c.Kind == kind && c.DriveType == drive {
			return c, true
		}
	}
	return Table5Cell{}, false
}

// ReciprocationStudy reproduces the §4.3 experiment: for every reciprocity
// service and each of the like/follow offerings, it registers emptyPer
// empty and livedPer lived-in honeypots on free trials, lets the services
// drive outbound actions for the full trial, allows reaction time, and
// measures reciprocation. Run it on a fresh world.
func (w *World) ReciprocationStudy(emptyPer, livedPer int) (*Table5, error) {
	type cellKey struct {
		service string
		kind    honeypot.Kind
		drive   platform.ActionType
	}
	accounts := make(map[cellKey][]*honeypot.Account)

	names := make([]string, 0, len(w.Recip))
	for name := range w.Recip {
		names = append(names, name)
	}
	sort.Strings(names)

	maxTrial := 0
	for _, name := range names {
		svc := w.Recip[name]
		if trial := svc.Spec().Reciprocity.ActualTrialDays(); trial > maxTrial {
			maxTrial = trial
		}
		for _, pair := range []struct {
			offer aas.Offering
			drive platform.ActionType
		}{
			{aas.OfferLike, platform.ActionLike},
			{aas.OfferFollow, platform.ActionFollow},
		} {
			for _, kindCount := range []struct {
				kind honeypot.Kind
				n    int
			}{{honeypot.Empty, emptyPer}, {honeypot.LivedIn, livedPer}} {
				for i := 0; i < kindCount.n; i++ {
					hp, err := w.Honeypots.Create(kindCount.kind)
					if err != nil {
						return nil, err
					}
					if _, err := svc.EnrollTrial(hp.Username, hp.Password, pair.offer); err != nil {
						return nil, fmt.Errorf("enroll %s with %s: %w", hp.Username, name, err)
					}
					w.Honeypots.MarkEnrolled(hp, name)
					key := cellKey{service: name, kind: kindCount.kind, drive: pair.drive}
					accounts[key] = append(accounts[key], hp)
				}
			}
		}
	}

	// Automation has been live since world construction; run the trials
	// out and leave two days for delayed organic reactions to land.
	w.Sched.RunFor(time.Duration(maxTrial+3) * clock.Day)

	table := &Table5{}
	for _, name := range names {
		for _, drive := range []platform.ActionType{platform.ActionLike, platform.ActionFollow} {
			for _, kind := range []honeypot.Kind{honeypot.Empty, honeypot.LivedIn} {
				hps := accounts[cellKey{service: name, kind: kind, drive: drive}]
				if len(hps) == 0 {
					continue
				}
				cell := Table5Cell{Service: name, Kind: kind, DriveType: drive, Honeypots: len(hps)}
				var likeReciprocators, followReciprocators int
				for _, hp := range hps {
					cell.Outbound += hp.Outbound[drive]
					for _, perActor := range hp.InboundDedup {
						if perActor[platform.ActionLike] > 0 {
							likeReciprocators++
						}
						if perActor[platform.ActionFollow] > 0 {
							followReciprocators++
						}
					}
				}
				if cell.Outbound > 0 {
					cell.InLikeRate = float64(likeReciprocators) / float64(cell.Outbound)
					cell.InFollowRate = float64(followReciprocators) / float64(cell.Outbound)
				}
				table.Cells = append(table.Cells, cell)
			}
		}
	}
	return table, nil
}
