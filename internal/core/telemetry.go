package core

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"footsteps/internal/telemetry"
)

// StreamTelemetryDaily schedules an end-of-day flush of the world's
// telemetry registry to out as JSONL, one record per simulated day (see
// docs/OBSERVABILITY.md for the schema). The flush runs at 23:59 each day
// for the measurement window plus slack, mirroring the automation
// schedules' overhang.
//
// The flush callbacks are pure observers: they read counters, set two
// gauges (sched.pending, sim.day), and write to out — they consume no RNG
// draws and touch no simulation state, so the event stream is unchanged.
// It is a no-op when the config carries no registry.
func (w *World) StreamTelemetryDaily(out io.Writer) {
	reg := w.Cfg.Telemetry
	if reg == nil || out == nil {
		return
	}
	dw := telemetry.NewDayWriter(out, reg)
	w.telemetryDays = dw
	w.Sched.EveryDay(23*time.Hour+59*time.Minute, w.Cfg.Days+5, func(int) {
		clk := w.Sched.Clock()
		w.updateGauges()
		// Errors are swallowed here: a broken metrics sink must never
		// abort a simulation run. The writer counts each failed line
		// (telemetry.jsonl.write_errors) and FinalizeTelemetry surfaces
		// the first error at teardown.
		_ = dw.WriteDay(clk.Day(), clk.Now())
	})
}

// OnFinalize registers fn to run when FinalizeTelemetry closes out the
// run. Error-swallowing sinks (the durable event log's sticky
// write/fsync error, for one) register here so a run that silently
// lost durability still reports it at exit.
func (w *World) OnFinalize(fn func() error) {
	w.finalizers = append(w.finalizers, fn)
}

// FinalizeTelemetry closes out the run's observability sinks: it
// refreshes the gauges, writes one final JSONL line (so shutdown
// state — final goroutine count, heap size, scheduler drain — is in the
// series even when the run stopped between daily flushes), runs every
// OnFinalize hook, and returns the first error any of them surfaced.
// A no-op returning nil when neither a daily stream nor finalizers were
// armed.
func (w *World) FinalizeTelemetry() error {
	var first error
	if dw := w.telemetryDays; dw != nil {
		clk := w.Sched.Clock()
		w.updateGauges()
		_ = dw.WriteDay(clk.Day(), clk.Now())
		first = dw.Close()
	}
	for _, fn := range w.finalizers {
		if err := fn(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// TelemetrySummary renders the end-of-run metrics table for the study
// report. Returns "" when the config carries no registry.
func (w *World) TelemetrySummary() string {
	reg := w.Cfg.Telemetry
	if reg == nil {
		return ""
	}
	w.updateGauges()
	s := "== Telemetry summary ==\n\n" + reg.Snapshot().Format()
	// Derived memory-per-account line for the scale arm: heap actually
	// in use over resident account rows (deleted rows stay resident by
	// design — see docs/PERFORMANCE.md, "Scaling to 1M accounts").
	if n := reg.Gauge("world.accounts").Value(); n > 0 {
		heap := reg.Gauge("runtime.heap_inuse").Value()
		s += fmt.Sprintf("\nderived: bytes_per_account %d (heap_inuse %d / accounts %d)\n", heap/n, heap, n)
	}
	return s
}

// updateGauges refreshes the point-in-time gauges before a snapshot.
// Besides the simulation gauges it samples runtime.MemStats once, so the
// daily JSONL stream and the end-of-run summary carry the allocator's
// trajectory (heap in use, GC cycles, cumulative pause). One ReadMemStats
// per simulated day is far too coarse to perturb the program it measures,
// and gauges are never part of hashed report goldens — see
// docs/DETERMINISM.md.
func (w *World) updateGauges() {
	reg := w.Cfg.Telemetry
	reg.Gauge("sched.pending").Set(int64(w.Sched.Pending()))
	reg.Gauge("sim.day").Set(int64(w.Sched.Clock().Day()))

	reg.Gauge("world.accounts").Set(int64(w.Plat.NumAccounts()))

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	reg.Gauge("runtime.heap_alloc").Set(int64(ms.HeapAlloc))
	reg.Gauge("runtime.heap_inuse").Set(int64(ms.HeapInuse))
	reg.Gauge("runtime.gc_cycles").Set(int64(ms.NumGC))
	reg.Gauge("runtime.pause_total_ns").Set(int64(ms.PauseTotalNs))
	// Goroutine count sits next to the MemStats gauges: at one sample per
	// simulated day it is diagnostic (a leaking worker pool shows as a
	// climbing line), not a perturbation.
	reg.Gauge("runtime.goroutines").Set(int64(runtime.NumGoroutine()))
}
