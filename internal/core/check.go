package core

import (
	"fmt"
	"strings"

	"footsteps/internal/aas"
	"footsteps/internal/honeypot"
	"footsteps/internal/platform"
)

// Finding is one calibration check against the paper's published results.
type Finding struct {
	Name   string
	OK     bool
	Detail string
}

// FormatFindings renders a check report; the bool reports overall pass.
func FormatFindings(fs []Finding) (string, bool) {
	var b strings.Builder
	allOK := true
	for _, f := range fs {
		mark := "PASS"
		if !f.OK {
			mark = "FAIL"
			allOK = false
		}
		fmt.Fprintf(&b, "  [%s] %-46s %s\n", mark, f.Name, f.Detail)
	}
	return b.String(), allOK
}

func within(v, lo, hi float64) bool { return v >= lo && v <= hi }

// CheckTable5 verifies a measured reciprocation table against the paper's
// Table 5, cell by cell, with bands wide enough for sampling noise at
// honeypot counts but tight enough to catch calibration drift.
func CheckTable5(t *Table5) []Finding {
	type band struct {
		svc   string
		kind  honeypot.Kind
		drive platform.ActionType
		// follow-channel band (the headline rate per drive type).
		lo, hi float64
	}
	bands := []band{
		// follow→follow, empty: paper 10.3–13.0%.
		{aas.NameBoostgram, honeypot.Empty, platform.ActionFollow, 0.06, 0.16},
		{aas.NameInstalex, honeypot.Empty, platform.ActionFollow, 0.08, 0.19},
		{aas.NameInstazood, honeypot.Empty, platform.ActionFollow, 0.08, 0.19},
		// follow→follow, lived-in: paper 12.0–16.1%.
		{aas.NameBoostgram, honeypot.LivedIn, platform.ActionFollow, 0.07, 0.20},
		{aas.NameInstalex, honeypot.LivedIn, platform.ActionFollow, 0.08, 0.24},
		{aas.NameInstazood, honeypot.LivedIn, platform.ActionFollow, 0.08, 0.24},
	}
	var out []Finding
	for _, bd := range bands {
		c, ok := t.Cell(bd.svc, bd.kind, bd.drive)
		name := fmt.Sprintf("T5 %s(%v) %v→follow", bd.svc, bd.kind, bd.drive)
		if !ok || c.Outbound == 0 {
			out = append(out, Finding{Name: name, OK: false, Detail: "cell missing"})
			continue
		}
		out = append(out, Finding{
			Name: name, OK: within(c.InFollowRate, bd.lo, bd.hi),
			Detail: fmt.Sprintf("%.3f (band %.2f–%.2f)", c.InFollowRate, bd.lo, bd.hi),
		})
	}
	// Invariant: follows never reciprocated with likes (all cells).
	worst := 0.0
	for _, c := range t.Cells {
		if c.DriveType == platform.ActionFollow && c.InLikeRate > worst {
			worst = c.InLikeRate
		}
	}
	out = append(out, Finding{
		Name: "T5 follow→like is zero", OK: worst <= 0.001,
		Detail: fmt.Sprintf("max %.4f", worst),
	})
	// Lived-in boost on the like channel, averaged over services.
	var e, l, n float64
	for _, svc := range []string{aas.NameBoostgram, aas.NameInstalex, aas.NameInstazood} {
		ce, okE := t.Cell(svc, honeypot.Empty, platform.ActionLike)
		cl, okL := t.Cell(svc, honeypot.LivedIn, platform.ActionLike)
		if okE && okL && ce.InLikeRate > 0 {
			e += ce.InLikeRate
			l += cl.InLikeRate
			n++
		}
	}
	if n > 0 {
		ratio := l / e
		out = append(out, Finding{
			Name: "T5 lived-in like boost", OK: within(ratio, 1.2, 3.2),
			Detail: fmt.Sprintf("%.2f× (paper 1.6–2.6×)", ratio),
		})
	}
	// The Instalex like→follow anomaly.
	ix, okIx := t.Cell(aas.NameInstalex, honeypot.Empty, platform.ActionLike)
	iz, okIz := t.Cell(aas.NameInstazood, honeypot.Empty, platform.ActionLike)
	if okIx && okIz {
		out = append(out, Finding{
			Name: "T5 Instalex like→follow anomaly",
			OK:   ix.InFollowRate > 3*iz.InFollowRate,
			Detail: fmt.Sprintf("Instalex %.4f vs Instazood %.4f",
				ix.InFollowRate, iz.InFollowRate),
		})
	}
	return out
}

// CheckBusiness verifies the §5 shape claims.
func CheckBusiness(r *BusinessResults) []Finding {
	var out []Finding
	add := func(name string, ok bool, detail string) {
		out = append(out, Finding{Name: name, OK: ok, Detail: detail})
	}

	// Table 6 shapes.
	hub, okHub := r.Table6[aas.NameHublaagram]
	bg, okBg := r.Table6[aas.NameBoostgram]
	insta, okInsta := r.Table6[LabelInstaStar]
	if !okHub || !okBg || !okInsta {
		add("T6 all services present", false, "missing label")
		return out
	}
	add("T6 popularity ordering", hub.Customers > insta.Customers && insta.Customers > bg.Customers,
		fmt.Sprintf("H=%d I=%d B=%d", hub.Customers, insta.Customers, bg.Customers))
	frac := func(lt, total int) float64 {
		if total == 0 {
			return 0
		}
		return float64(lt) / float64(total)
	}
	add("T6 Hublaagram long-term ≈ half", within(frac(hub.LongTerm, hub.Customers), 0.35, 0.75),
		fmt.Sprintf("%.2f (paper 0.50)", frac(hub.LongTerm, hub.Customers)))
	add("T6 reciprocity long-term ≈ third", within(frac(insta.LongTerm, insta.Customers), 0.15, 0.55),
		fmt.Sprintf("%.2f (paper 0.34)", frac(insta.LongTerm, insta.Customers)))
	add("T6 long-term action share ≳ 0.85", hub.LongActions > 0.8 && insta.LongActions > 0.8,
		fmt.Sprintf("H=%.2f I=%.2f (paper ≈0.92)", hub.LongActions, insta.LongActions))

	// Table 8/9: the collusion network out-earns each reciprocity AAS.
	recipBest := r.Table8Boostgram.Monthly
	if r.Table8InstaHigh.Monthly > recipBest {
		recipBest = r.Table8InstaHigh.Monthly
	}
	add("T8/T9 Hublaagram revenue dominance", r.Table9.MonthlyLow > recipBest,
		fmt.Sprintf("Hubla $%.0f vs best reciprocity $%.0f", r.Table9.MonthlyLow, recipBest))
	add("T9 tiers dwarf ads", tierTotal(r) > 10*r.Table9.AdRevenueHigh,
		fmt.Sprintf("tiers $%.0f vs ads ≤ $%.0f", tierTotal(r), r.Table9.AdRevenueHigh))

	// Table 10: repeat customers dominate everywhere.
	for label, s := range r.Table10 {
		add("T10 "+label+" preexisting majority", s.PreexistingFraction > 0.5,
			fmt.Sprintf("%.2f", s.PreexistingFraction))
	}

	// Table 11 orderings.
	add("T11 Boostgram like-heavy",
		r.Table11[aas.NameBoostgram][platform.ActionLike] > r.Table11[aas.NameBoostgram][platform.ActionFollow],
		fmt.Sprintf("likes %.2f follows %.2f", r.Table11[aas.NameBoostgram][platform.ActionLike],
			r.Table11[aas.NameBoostgram][platform.ActionFollow]))
	add("T11 Insta* follow-heavy",
		r.Table11[LabelInstaStar][platform.ActionFollow] > r.Table11[LabelInstaStar][platform.ActionLike],
		fmt.Sprintf("follows %.2f likes %.2f", r.Table11[LabelInstaStar][platform.ActionFollow],
			r.Table11[LabelInstaStar][platform.ActionLike]))

	// Figures 3/4 targeting bias.
	for _, label := range []string{LabelInstaStar, aas.NameBoostgram} {
		if r.Figure3[label] == nil || r.Figure3["Random"] == nil {
			add("F3/F4 "+label+" samples", false, "missing CDF")
			continue
		}
		add("F3 "+label+" targets follow more",
			r.Figure3[label].Median() > r.Figure3["Random"].Median(),
			fmt.Sprintf("%.0f vs %.0f", r.Figure3[label].Median(), r.Figure3["Random"].Median()))
		add("F4 "+label+" targets followed less",
			r.Figure4[label].Median() < r.Figure4["Random"].Median(),
			fmt.Sprintf("%.0f vs %.0f", r.Figure4[label].Median(), r.Figure4["Random"].Median()))
	}

	// Drift and overlap sanity.
	add("§5 signal drift clean", r.DriftFailures == 0,
		fmt.Sprintf("%d/%d failed", r.DriftFailures, r.DriftChecks))
	total := hub.Customers + insta.Customers + bg.Customers
	add("§5.1 overlap small", total == 0 || float64(r.Overlap.RecipAndCollusion)/float64(total) < 0.05,
		fmt.Sprintf("%d of %d customers", r.Overlap.RecipAndCollusion, total))
	return out
}

func tierTotal(r *BusinessResults) float64 {
	var t float64
	for _, v := range r.Table9.TierRevenue {
		t += v
	}
	return t
}
