package core

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"footsteps/internal/clock"
	"footsteps/internal/persistence"
)

// This file is the world-level half of snapshot/restore (the wire format
// and per-component states live in internal/persistence; the invariant
// and layout are documented in docs/PERSISTENCE.md).
//
// Restore is reconstruction, not deserialization-from-nothing: a
// snapshot holds only mutable state, and everything static — wiring,
// schedules, closures — is rebuilt by re-running NewWorld and RunAll
// with the same config, exactly as a straight-through run would. The
// scheduler is then fast-forwarded to the snapshot instant (dropping the
// already-fired portion of the schedule), every component's state is
// overwritten from the snapshot, and the pending dynamic events
// (delayed enforcements, reciprocal reactions, backoff retries) are
// re-registered from their serialized tables. From that point the
// resumed world replays the identical timeline.

// Snapshot writes the world's complete mutable state to out as one
// FSNAP1 stream. Call only at a quiescent instant (a day boundary, as
// RunDays does): no tick may be mid-flight.
func (w *World) Snapshot(out io.Writer) error {
	h := persistence.Header{
		Version:     persistence.Version,
		Seed:        w.Cfg.Seed,
		Fingerprint: w.Cfg.Fingerprint(),
		Day:         w.daysRun,
		Now:         w.Sched.Clock().Now(),
	}
	return persistence.Encode(out, h, w.snapshotState())
}

func (w *World) snapshotState() *persistence.WorldState {
	st := &persistence.WorldState{
		Root:      w.RNG.State(),
		NetAlloc:  w.Reg.SnapshotAlloc(),
		Platform:  w.Plat.SnapshotState(),
		Graph:     w.graph.SnapshotState(),
		Behavior:  w.Pop.SnapshotState(),
		Honeypots: w.Honeypots.SnapshotState(),
	}
	if w.Guard != nil {
		st.Guard = w.Guard.SnapshotState()
	}
	for _, name := range w.ServiceNames() {
		if svc, ok := w.Recip[name]; ok {
			st.Recip = append(st.Recip, persistence.NamedRecip{Name: name, State: svc.SnapshotState()})
		}
		if svc, ok := w.Coll[name]; ok {
			st.Coll = append(st.Coll, persistence.NamedColl{Name: name, State: svc.SnapshotState()})
		}
	}
	for _, r := range w.vpnRNGs {
		st.VPNRNGs = append(st.VPNRNGs, r.State())
	}
	if w.crossRNG != nil {
		st.CrossRNG = w.crossRNG.State()
	}
	for name, n := range w.crossSeen {
		st.CrossSeen = append(st.CrossSeen, persistence.ServiceCount{Name: name, N: n})
	}
	sort.Slice(st.CrossSeen, func(i, j int) bool { return st.CrossSeen[i].Name < st.CrossSeen[j].Name })
	return st
}

// RestoreWorld rebuilds a world from a snapshot written by Snapshot. The
// config must describe the same semantic world: the snapshot's seed and
// config fingerprint are checked against cfg and a *persistence.
// MismatchError is returned on disagreement. Performance knobs (Workers,
// Shards, Telemetry) are free to differ — the restored timeline is
// byte-identical regardless.
//
// The returned world sits at the snapshot instant with lifecycle
// schedules live (RunAll has been applied); drive it with RunDays. No
// event writer is attached: attach one to Plat.Log() before running if
// the resumed stream should be recorded.
func RestoreWorld(cfg Config, r io.Reader) (*World, error) {
	h, st, err := persistence.Decode(r)
	if err != nil {
		return nil, err
	}
	if h.Seed != cfg.Seed {
		return nil, &persistence.MismatchError{Field: "seed", Got: h.Seed, Want: cfg.Seed}
	}
	if fp := cfg.Fingerprint(); h.Fingerprint != fp {
		return nil, &persistence.MismatchError{Field: "config fingerprint", Got: h.Fingerprint, Want: fp}
	}

	// Rebuild all static structure exactly as the original run did.
	// Construction and lifecycle registration consume the same RNG draws
	// and scheduler sequence numbers as the original, so relative event
	// order within each instant is preserved. The events these steps
	// emit reach no recorder (nothing is attached yet), and the only
	// construction-time log subscriber — honeypot monitoring — has its
	// counters overwritten from the snapshot below.
	w := NewWorld(cfg)
	w.RunAll()
	w.Sched.FastForward(h.Now)
	w.daysRun = h.Day

	// Overwrite every component's mutable state.
	w.RNG.SetState(st.Root)
	w.Reg.RestoreAlloc(st.NetAlloc)
	w.Plat.RestoreState(st.Platform)
	w.graph.RestoreState(st.Graph)
	w.Pop.RestoreState(st.Behavior)
	w.Honeypots.RestoreState(st.Honeypots)
	if w.Guard != nil && st.Guard != nil {
		w.Guard.RestoreState(st.Guard)
	}
	for _, nr := range st.Recip {
		svc, ok := w.Recip[nr.Name]
		if !ok {
			return nil, fmt.Errorf("core: snapshot has reciprocity service %q not present in this config", nr.Name)
		}
		svc.RestoreState(nr.State)
	}
	for _, nc := range st.Coll {
		svc, ok := w.Coll[nc.Name]
		if !ok {
			return nil, fmt.Errorf("core: snapshot has collusion service %q not present in this config", nc.Name)
		}
		svc.RestoreState(nc.State)
	}
	if len(st.VPNRNGs) != len(w.vpnRNGs) {
		return nil, fmt.Errorf("core: snapshot has %d VPN-user streams, this config builds %d", len(st.VPNRNGs), len(w.vpnRNGs))
	}
	for i, s := range st.VPNRNGs {
		w.vpnRNGs[i].SetState(s)
	}
	if w.crossRNG != nil {
		// Overwrite in place: the daily pass closure holds this pointer.
		w.crossRNG.SetState(st.CrossRNG)
	}
	clear(w.crossSeen)
	for _, sc := range st.CrossSeen {
		w.crossSeen[sc.Name] = sc.N
	}

	// Re-register the pending dynamic events from their serialized
	// tables, in their original per-component scheduling order. These
	// are the only schedule entries that did not come from construction.
	w.Plat.RestoreEnforcements(st.Platform.Enforcements)
	w.Pop.RestoreReactions(st.Behavior.Reactions)
	for _, nr := range st.Recip {
		w.Recip[nr.Name].RestoreRetries(nr.State.Base.Retries)
	}
	for _, nc := range st.Coll {
		w.Coll[nc.Name].RestoreRetries(nc.State.Base.Retries)
	}
	return w, nil
}

// RestoreFile is RestoreWorld over a checkpoint file on disk.
func RestoreFile(cfg Config, path string) (*World, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return RestoreWorld(cfg, f)
}

// RunDays advances the world n simulated days, one day per RunFor call
// (chunked runs replay the same timeline as one long run), writing a
// checkpoint after every CheckpointEvery completed days when a
// checkpoint directory is configured.
func (w *World) RunDays(n int) error { return w.RunDaysFunc(n, nil) }

// RunDaysFunc is RunDays with an after-day hook: after each completed
// day (and its periodic checkpoint, if armed) it calls after with the
// total days run so far. A non-nil error stops the run and is returned
// — the durable log uses this to checkpoint at day boundaries and to
// halt cleanly when its filesystem has failed.
func (w *World) RunDaysFunc(n int, after func(day int) error) error {
	for i := 0; i < n; i++ {
		w.Sched.RunFor(clock.Day)
		w.daysRun++
		if w.checkpointEvery > 0 && w.checkpointDir != "" && w.daysRun%w.checkpointEvery == 0 {
			if _, err := w.WriteCheckpoint(); err != nil {
				return err
			}
		}
		if after != nil {
			if err := after(w.daysRun); err != nil {
				return err
			}
		}
	}
	return nil
}

// DaysRun reports how many whole days RunDays has completed.
func (w *World) DaysRun() int { return w.daysRun }

// WriteCheckpoint snapshots the world into its checkpoint directory as
// checkpoint-day-NNN.fsnap and returns the path written. The file lands
// atomically (tmp + fsync + rename + dir fsync), so a crash mid-write
// can never leave a half-written snapshot under the final name.
func (w *World) WriteCheckpoint() (string, error) {
	if w.checkpointDir == "" {
		return "", fmt.Errorf("core: no checkpoint directory configured")
	}
	if err := os.MkdirAll(w.checkpointDir, 0o755); err != nil {
		return "", err
	}
	var buf bytes.Buffer
	if err := w.Snapshot(&buf); err != nil {
		return "", err
	}
	path := filepath.Join(w.checkpointDir, fmt.Sprintf("checkpoint-day-%03d.fsnap", w.daysRun))
	if err := persistence.AtomicWriteFile(path, buf.Bytes()); err != nil {
		return "", err
	}
	return path, nil
}

// SnapshotInstant reports the simulated instant a snapshot taken now
// would carry — the restore target for suffix comparisons.
func (w *World) SnapshotInstant() time.Time { return w.Sched.Clock().Now() }
