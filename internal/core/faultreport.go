package core

import (
	"fmt"
	"strings"

	"footsteps/internal/telemetry"
)

// FaultSummary renders the study report's fault/retry/breaker section
// from the telemetry counters (docs/FAULTS.md documents each
// instrument). It returns "" when fault injection is off or no
// telemetry registry is attached — the section only appears when there
// is something measured to report.
func (w *World) FaultSummary() string {
	if w.Faults == nil || w.Cfg.Telemetry == nil {
		return ""
	}
	snap := w.Cfg.Telemetry.Snapshot()
	c := snap.Counters

	var b strings.Builder
	name := "(unnamed)"
	if p := w.Faults.Profile(); p != nil && p.Name != "" {
		name = p.Name
	}
	fmt.Fprintf(&b, "== Fault injection and client resilience (profile %q) ==\n\n", name)

	// Injected faults, platform side.
	unavailableEvents := int64(0)
	for k, v := range c {
		if strings.HasPrefix(k, "platform.events.") && strings.HasSuffix(k, ".unavailable") {
			unavailableEvents += v
		}
	}
	b.WriteString(telemetry.Table(
		[]string{"fault", "injected"},
		[][]string{
			{"unavailable (transient 5xx)", fmt.Sprint(c["faults.injected.unavailable"])},
			{"asn outage denials", fmt.Sprint(c["faults.injected.asn_outage"])},
			{"session flaps (revocations)", fmt.Sprint(c["faults.injected.session_flap"])},
			{"latency-affected requests", fmt.Sprint(c["faults.injected.latency"])},
			{"rate-limit storm denials", fmt.Sprint(c["platform.ratelimit.storm_denied"])},
			{"unavailable events emitted", fmt.Sprint(unavailableEvents)},
		},
	))

	// Client resilience, per service.
	b.WriteString("\n")
	rows := make([][]string, 0, 8)
	for _, svc := range w.ServiceNames() {
		p := "aas." + svc + "."
		shed := int64(0)
		for k, v := range c {
			if strings.HasPrefix(k, p+"shed.") {
				shed += v
			}
		}
		rows = append(rows, []string{
			svc,
			fmt.Sprint(c[p+"retries.scheduled"]),
			fmt.Sprint(c[p+"retries.recovered"]),
			fmt.Sprint(c[p+"retries.exhausted"]),
			fmt.Sprint(c[p+"relogin.attempts"]),
			fmt.Sprint(c[p+"relogin.recovered"]),
			fmt.Sprintf("%d/%d/%d", c[p+"breaker.opened"], c[p+"breaker.reopened"], c[p+"breaker.closed"]),
			fmt.Sprint(shed),
		})
	}
	b.WriteString(telemetry.Table(
		[]string{"service", "retries", "recovered", "exhausted", "relogins", "re-ok", "brk o/r/c", "shed"},
		rows,
	))
	return b.String()
}
