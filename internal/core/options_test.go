package core

import (
	"testing"

	"footsteps/internal/faults"
	"footsteps/internal/telemetry"
)

// TestOptionsComposeOverDefaults checks the functional constructors are
// exactly "base config + mutations": an empty option list reproduces
// the base structs, and options apply left to right.
func TestOptionsComposeOverDefaults(t *testing.T) {
	t.Parallel()
	if got, want := New(), DefaultConfig(); got.Seed != want.Seed || got.Days != want.Days ||
		got.Scale != want.Scale || got.Workers != want.Workers || got.Shards != want.Shards {
		t.Fatalf("New() = %+v, want DefaultConfig %+v", got, want)
	}
	if got, want := NewTest(), TestConfig(); got.Days != want.Days || got.OrganicPopulation != want.OrganicPopulation {
		t.Fatalf("NewTest() = %+v, want TestConfig %+v", got, want)
	}

	reg := telemetry.NewRegistry()
	cfg := New(
		WithSeed(7),
		WithWorkers(8),
		WithShards(16),
		WithDays(12),
		WithScale(0.25),
		WithGraphWrites(true),
		WithOrganicPopulation(123),
		WithPoolSize(45),
		WithVPNUsers(6),
		WithIPDailyBudget(789),
		WithTelemetry(reg),
		WithFaults("storm"),
	)
	if cfg.Seed != 7 || cfg.Workers != 8 || cfg.Shards != 16 || cfg.Days != 12 ||
		cfg.Scale != 0.25 || !cfg.GraphWrites || cfg.OrganicPopulation != 123 ||
		cfg.PoolSize != 45 || cfg.VPNUsers != 6 || cfg.IPDailyBudget != 789 ||
		cfg.Telemetry != reg {
		t.Fatalf("options did not apply: %+v", cfg)
	}
	if cfg.Faults == nil || cfg.Faults.Name != "storm" {
		t.Fatalf("WithFaults: got %+v", cfg.Faults)
	}

	// Later options win.
	if got := New(WithSeed(1), WithSeed(2)).Seed; got != 2 {
		t.Fatalf("left-to-right application broken: seed %d, want 2", got)
	}
	// WithFaultProfile accepts a prebuilt profile (and nil disables).
	p := faults.MustScenario("blip")
	if got := New(WithFaultProfile(p)).Faults; got != p {
		t.Fatal("WithFaultProfile did not attach the profile")
	}
	if got := New(WithFaults("mixed"), WithFaultProfile(nil)).Faults; got != nil {
		t.Fatal("WithFaultProfile(nil) did not clear the profile")
	}
}

// TestOptionConfigBuildsWorld is the integration smoke test: a world
// built from an options-constructed config honors the concurrency
// knobs (worker pool, shard counts) end to end.
func TestOptionConfigBuildsWorld(t *testing.T) {
	t.Parallel()
	cfg := NewTest(WithDays(2), WithWorkers(2), WithShards(4),
		WithOrganicPopulation(50), WithPoolSize(40), WithVPNUsers(4))
	w := NewWorld(cfg)
	if got := w.Plat.Shards(); got != 4 {
		t.Errorf("platform shards = %d, want 4", got)
	}
	if got := w.Plat.Graph().Shards(); got != 4 {
		t.Errorf("graph shards = %d, want 4", got)
	}
	// The zero-value knob falls back to defaults at construction.
	w0 := NewWorld(NewTest(WithDays(2), WithOrganicPopulation(50), WithPoolSize(40), WithVPNUsers(4)))
	if got := w0.Plat.Shards(); got < 1 {
		t.Errorf("default shard count = %d, want >= 1", got)
	}
}
