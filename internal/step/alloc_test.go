package step

import "testing"

// Steady-state allocation budgets for the tick hot path, enforced by the
// TestAllocBudget tests below. Budgets count allocations per RunInto
// call (one simulated tick section) with warm reusable Buffers. Raise a
// budget only with a profile showing why — see docs/PERFORMANCE.md.
const (
	// Warm Buffers cache both the intent slices and the per-shard emit
	// closures; the only remaining per-call allocation is the runShard
	// dispatch closure.
	allocBudgetRunInto    = 1
	allocBudgetChunksInto = 0
)

// TestAllocBudgetRunInto pins the per-tick allocation count of the
// inline intent/apply cycle when the caller supplies warm Buffers.
func TestAllocBudgetRunInto(t *testing.T) {
	const shards = 8
	var b Buffers[int]
	sum := 0
	gen := func(shard int, emit func(int)) {
		for i := 0; i < 16; i++ {
			emit(shard*16 + i)
		}
	}
	apply := func(v int) { sum += v }
	// Warm the shard buffers to their steady capacity.
	RunInto[int](nil, &b, shards, gen, apply)
	got := testing.AllocsPerRun(100, func() {
		RunInto[int](nil, &b, shards, gen, apply)
	})
	if got > allocBudgetRunInto {
		t.Errorf("step.RunInto allocates %.1f per tick over %d warm shards, budget %d — pooled intent buffers or cached emit closures regressed",
			got, shards, allocBudgetRunInto)
	}
	if sum == 0 {
		t.Fatal("apply never ran; measurement is vacuous")
	}
}

// TestAllocBudgetChunksInto pins the shard-bounds recomputation: with a
// warm destination it must not allocate.
func TestAllocBudgetChunksInto(t *testing.T) {
	bounds := ChunksInto(nil, 1000, 16)
	if len(bounds) == 0 {
		t.Fatal("no bounds produced; measurement is vacuous")
	}
	got := testing.AllocsPerRun(100, func() {
		bounds = ChunksInto(bounds[:0], 1000, 16)
	})
	if got > allocBudgetChunksInto {
		t.Errorf("step.ChunksInto allocates %.1f/op into a warm buffer, budget %d",
			got, allocBudgetChunksInto)
	}
}
