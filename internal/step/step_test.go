package step

import (
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"

	"footsteps/internal/rng"
	"footsteps/internal/telemetry"
)

// collect runs one intent/apply cycle where each shard emits a
// deterministic pseudo-random number of items drawn from a forked stream,
// and returns the applied sequence.
func collect(workers, shards int, seed uint64) []string {
	root := rng.New(seed)
	pool := NewPool(workers)
	var out []string
	Run(pool, shards, func(shard int, emit func(string)) {
		r := root.Fork(uint64(shard))
		n := r.Intn(7)
		for k := 0; k < n; k++ {
			emit(fmt.Sprintf("s%d.%d:%d", shard, k, r.Uint64()))
		}
	}, func(v string) { out = append(out, v) })
	return out
}

// TestRunMergeOrderIndependentOfWorkers is the pool's core contract: any
// worker count produces the identical apply sequence.
func TestRunMergeOrderIndependentOfWorkers(t *testing.T) {
	t.Parallel()
	check := func(seed uint64, shards uint8, workers uint8) bool {
		n := int(shards%33) + 1
		w := int(workers%16) + 2
		want := collect(1, n, seed)
		got := collect(w, n, seed)
		if len(want) != len(got) {
			return false
		}
		for i := range want {
			if want[i] != got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestRunBarrierBeforeApply: no apply may run before every shard has
// generated (generation must observe the pre-tick snapshot).
func TestRunBarrierBeforeApply(t *testing.T) {
	t.Parallel()
	var generated atomic.Int32
	const shards = 50
	Run(NewPool(8), shards, func(shard int, emit func(int)) {
		generated.Add(1)
		emit(shard)
	}, func(int) {
		if g := generated.Load(); g != shards {
			t.Errorf("apply ran with only %d/%d shards generated", g, shards)
		}
	})
}

// TestRunAppliesSerially: apply must never run concurrently with itself.
func TestRunAppliesSerially(t *testing.T) {
	t.Parallel()
	var inApply atomic.Int32
	applied := 0
	Run(NewPool(6), 40, func(shard int, emit func(int)) {
		for k := 0; k < 5; k++ {
			emit(shard*10 + k)
		}
	}, func(int) {
		if inApply.Add(1) != 1 {
			t.Error("concurrent apply")
		}
		applied++
		inApply.Add(-1)
	})
	if applied != 40*5 {
		t.Fatalf("applied %d intents, want %d", applied, 40*5)
	}
}

// TestRunGenConcurrencyBounded: at most Workers() gens in flight.
func TestRunGenConcurrencyBounded(t *testing.T) {
	t.Parallel()
	const workers = 3
	var inGen, peak atomic.Int32
	Run(NewPool(workers), 64, func(shard int, emit func(struct{})) {
		n := inGen.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		inGen.Add(-1)
	}, func(struct{}) {})
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent gens, bound %d", p, workers)
	}
}

// TestNilPoolRunsInline: a nil *Pool is a valid sequential pool.
func TestNilPoolRunsInline(t *testing.T) {
	t.Parallel()
	var p *Pool
	if p.Workers() != 1 {
		t.Fatalf("nil pool workers = %d", p.Workers())
	}
	got := 0
	Run(p, 5, func(shard int, emit func(int)) { emit(shard) }, func(v int) { got += v })
	if got != 0+1+2+3+4 {
		t.Fatalf("nil pool applied sum %d", got)
	}
}

// TestChunksCoverExactly: chunk bounds tile [0, count) with no gaps or
// overlaps regardless of parameters.
func TestChunksCoverExactly(t *testing.T) {
	t.Parallel()
	check := func(count uint16, chunk uint8) bool {
		n := int(count % 500)
		c := int(chunk % 40)
		bounds := Chunks(n, c)
		next := 0
		for _, b := range bounds {
			if b[0] != next || b[1] <= b[0] || b[1] > n {
				return false
			}
			next = b[1]
		}
		return next == n || (n == 0 && bounds == nil)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestTracerObservesRun: a wired tracer records sections, shards, and
// intent counts on both the inline and pooled paths, and identical
// generation happens with or without it.
func TestTracerObservesRun(t *testing.T) {
	t.Parallel()
	for _, workers := range []int{1, 4} {
		reg := telemetry.NewRegistry()
		p := NewPool(workers)
		p.SetTracer(telemetry.NewTickTracer(reg))
		sum := 0
		Run(p, 6, func(shard int, emit func(int)) {
			emit(shard)
			emit(shard * 10)
		}, func(v int) { sum += v })
		if want := (0 + 1 + 2 + 3 + 4 + 5) * 11; sum != want {
			t.Fatalf("workers=%d: applied sum %d, want %d", workers, sum, want)
		}
		snap := reg.Snapshot()
		if snap.Counters["step.sections"] != 1 {
			t.Fatalf("workers=%d: sections = %d", workers, snap.Counters["step.sections"])
		}
		if snap.Counters["step.shards"] != 6 {
			t.Fatalf("workers=%d: shards = %d", workers, snap.Counters["step.shards"])
		}
		if snap.Counters["step.intents"] != 12 {
			t.Fatalf("workers=%d: intents = %d", workers, snap.Counters["step.intents"])
		}
		if snap.Histograms["step.apply.ns"].Count != 1 {
			t.Fatalf("workers=%d: apply histogram count = %d", workers, snap.Histograms["step.apply.ns"].Count)
		}
	}
}
