// Package step provides the determinism-preserving worker pool behind the
// simulator's parallel per-tick stepping.
//
// The execution model is an intent/apply split. Work for one tick is
// partitioned into shards of independent actors. Each shard runs a
// generation function that makes every stochastic decision for its actors
// — drawing only from per-actor forked RNG streams (rng.Fork) and only
// *reading* shared state — and emits intents into a buffer private to the
// shard. When every shard has finished, the intents are applied serially
// in (shardID, emission seq) order by a single goroutine, which is the
// only place shared state (platform, social graph, event log) mutates.
//
// Because generation sees a frozen pre-tick snapshot and each actor draws
// from its own stream, the merged intent sequence — and therefore the
// post-merge event stream — is a pure function of the simulation seed.
// Worker count changes wall-clock time, never bytes: Run with 1 worker
// and Run with 8 workers produce identical applies in identical order.
// See docs/DETERMINISM.md.
package step

import (
	"sync"
	"time"

	"footsteps/internal/telemetry"
	"footsteps/internal/trace"
)

// Pool is a bounded worker pool for shard generation. The zero/nil Pool is
// valid and runs generation inline on the calling goroutine, which by
// construction produces exactly the same apply sequence as any worker
// count; everything still goes through the same generate-barrier-apply
// pipeline so sequential and parallel runs share one code path.
type Pool struct {
	workers int
	tracer  *telemetry.TickTracer
	trace   *trace.Tracer
}

// NewPool returns a pool running shard generation on up to workers
// goroutines. workers <= 1 yields an inline (sequential) pool.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{workers: workers}
}

// Workers reports the pool's concurrency bound (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// SetTracer installs a telemetry tick tracer on the pool. The tracer is
// a pure observer — it records wall-clock phase durations and intent
// counts into atomics and feeds nothing back into Run's control flow, so
// tracing never changes the apply order or the event stream. A nil
// tracer (the default) disables timing entirely.
func (p *Pool) SetTracer(tr *telemetry.TickTracer) {
	if p == nil {
		return
	}
	p.tracer = tr
}

// Tracer returns the pool's tracer (nil for a nil pool or none set).
func (p *Pool) Tracer() *telemetry.TickTracer {
	if p == nil {
		return nil
	}
	return p.tracer
}

// SetTrace installs a span tracer on the pool: each RunInto section then
// emits a section span with per-shard plan children (subject to the
// tracer's sampler). Like the telemetry tracer it is a pure observer —
// nothing it records feeds back into Run's control flow.
func (p *Pool) SetTrace(tr *trace.Tracer) {
	if p == nil {
		return
	}
	p.trace = tr
}

// Trace returns the pool's span tracer (nil for a nil pool or none set).
func (p *Pool) Trace() *trace.Tracer {
	if p == nil {
		return nil
	}
	return p.trace
}

// Buffers is reusable per-shard intent scratch for RunInto. A caller
// that steps the same kind of intent every tick holds one Buffers per
// intent type and passes it to RunInto, which reuses the accumulated
// slice capacity across ticks instead of reallocating it per tick. The
// zero value is ready to use.
//
// A Buffers value must not be shared by concurrent Run calls. Between
// ticks the shard slices are truncated, not zeroed: stale intent values
// stay reachable (keeping what they point at alive) until overwritten,
// but are never observable — RunInto resets every shard to length zero
// before generation, so no intent from a previous tick can leak into
// the apply sequence. The pooled-vs-fresh stream property test in
// internal/simtest pins this.
type Buffers[T any] struct {
	bufs [][]T
	// emits caches the per-shard emit closures so steady-state ticks do
	// not materialize n fresh closures per section. Each closure reads
	// b.bufs at call time, so buffer-array regrowth cannot strand it.
	emits []func(T)
}

// emit returns the cached emit closure for shard i, creating it on
// first use.
func (b *Buffers[T]) emit(i int) func(T) {
	for len(b.emits) <= i {
		j := len(b.emits)
		b.emits = append(b.emits, func(v T) { b.bufs[j] = append(b.bufs[j], v) })
	}
	return b.emits[i]
}

// Run executes one tick's intent/apply cycle over n shards with fresh
// (per-call) intent buffers. Equivalent to RunInto with nil Buffers.
func Run[T any](p *Pool, n int, gen func(shard int, emit func(T)), apply func(T)) {
	RunInto(p, nil, n, gen, apply)
}

// RunInto executes one tick's intent/apply cycle over n shards.
//
// gen(shard, emit) is called once per shard in [0, n), concurrently on up
// to p.Workers() goroutines. It must treat shared simulation state as
// read-only and confine mutation to the shard's own actors and to emitted
// intents; all randomness must come from streams owned by the shard's
// actors. emit is only valid during that gen call.
//
// After every shard has generated — a full barrier, so generation always
// observes the pre-tick state — apply is invoked serially on the calling
// goroutine for every intent, ordered by (shardID, emission seq). apply
// is where shared state may mutate.
//
// b, when non-nil, provides the per-shard intent buffers and keeps their
// capacity for the caller's next tick; nil allocates fresh buffers.
// Buffer reuse is invisible to gen and apply — the apply sequence is
// byte-for-byte the one a fresh allocation would produce.
func RunInto[T any](p *Pool, b *Buffers[T], n int, gen func(shard int, emit func(T)), apply func(T)) {
	if n <= 0 {
		return
	}
	workers := p.Workers()
	if workers > n {
		workers = n
	}
	tr := p.Tracer()
	tr.SectionStart()
	// The span section must be opened on the calling (serial) goroutine:
	// StartSection allocates this section's deterministic sequence range.
	// ShardDone writes only disjoint per-shard slots, so workers may call
	// it concurrently; emission happens in sec.End, after the barrier.
	sec := p.Trace().StartSection(n)
	var bufs [][]T
	var emits []func(T)
	if b == nil {
		bufs = make([][]T, n)
	} else {
		if cap(b.bufs) < n {
			grown := make([][]T, n)
			copy(grown, b.bufs)
			b.bufs = grown
		}
		bufs = b.bufs[:n]
		for i := range bufs {
			bufs[i] = bufs[i][:0]
		}
		// Materialize any missing emit closures now, before workers
		// start: b.emits is then read-only for the rest of the call.
		b.emit(n - 1)
		emits = b.emits
	}
	// runShard generates one shard, timing it when tracing is on. The
	// timing wrapper is identical on the inline and pooled paths and
	// only writes to telemetry atomics, so it cannot affect the bytes.
	runShard := func(i int) {
		var em func(T)
		if emits != nil {
			em = emits[i]
		} else {
			em = func(v T) { bufs[i] = append(bufs[i], v) }
		}
		if !tr.Enabled() && sec == nil {
			gen(i, em)
			return
		}
		start := time.Now()
		gen(i, em)
		d := time.Since(start)
		if tr.Enabled() {
			tr.ShardPlanned(d, len(bufs[i]))
		}
		sec.ShardDone(i, d, len(bufs[i]))
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			runShard(i)
		}
	} else {
		var wg sync.WaitGroup
		shards := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range shards {
					runShard(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			shards <- i
		}
		close(shards)
		wg.Wait()
	}
	var applyStart time.Time
	if tr.Enabled() || sec != nil {
		applyStart = time.Now()
	}
	applied := 0
	for _, buf := range bufs {
		applied += len(buf)
		for _, v := range buf {
			apply(v)
		}
	}
	if tr.Enabled() || sec != nil {
		applyDur := time.Since(applyStart)
		if tr.Enabled() {
			tr.Applied(applyDur, applied)
		}
		sec.End(applyDur, applied)
	}
}

// Chunks partitions count items into shards of at most chunk items and
// returns the shard bounds as (lo, hi) pairs flattened into a slice of
// [2]int. It exists so callers sharding large actor sets can amortize
// per-shard dispatch overhead while keeping the shard decomposition — and
// hence the (shardID, seq) merge order — a pure function of count and
// chunk, independent of worker count.
func Chunks(count, chunk int) [][2]int {
	if count <= 0 {
		return nil
	}
	if chunk <= 0 {
		chunk = 1
	}
	return ChunksInto(nil, count, chunk)
}

// ChunksInto is Chunks appending into dst (reusing its capacity), for
// callers that recompute the same decomposition every tick. The bounds
// depend only on (count, chunk), so reuse cannot change the merge order.
func ChunksInto(dst [][2]int, count, chunk int) [][2]int {
	if count <= 0 {
		return dst[:0]
	}
	if chunk <= 0 {
		chunk = 1
	}
	dst = dst[:0]
	for lo := 0; lo < count; lo += chunk {
		hi := lo + chunk
		if hi > count {
			hi = count
		}
		dst = append(dst, [2]int{lo, hi})
	}
	return dst
}
