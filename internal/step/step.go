// Package step provides the determinism-preserving worker pool behind the
// simulator's parallel per-tick stepping.
//
// The execution model is an intent/apply split. Work for one tick is
// partitioned into shards of independent actors. Each shard runs a
// generation function that makes every stochastic decision for its actors
// — drawing only from per-actor forked RNG streams (rng.Fork) and only
// *reading* shared state — and emits intents into a buffer private to the
// shard. When every shard has finished, the intents are applied serially
// in (shardID, emission seq) order by a single goroutine, which is the
// only place shared state (platform, social graph, event log) mutates.
//
// Because generation sees a frozen pre-tick snapshot and each actor draws
// from its own stream, the merged intent sequence — and therefore the
// post-merge event stream — is a pure function of the simulation seed.
// Worker count changes wall-clock time, never bytes: Run with 1 worker
// and Run with 8 workers produce identical applies in identical order.
// See docs/DETERMINISM.md.
package step

import (
	"sync"
	"time"

	"footsteps/internal/telemetry"
)

// Pool is a bounded worker pool for shard generation. The zero/nil Pool is
// valid and runs generation inline on the calling goroutine, which by
// construction produces exactly the same apply sequence as any worker
// count; everything still goes through the same generate-barrier-apply
// pipeline so sequential and parallel runs share one code path.
type Pool struct {
	workers int
	tracer  *telemetry.TickTracer
}

// NewPool returns a pool running shard generation on up to workers
// goroutines. workers <= 1 yields an inline (sequential) pool.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{workers: workers}
}

// Workers reports the pool's concurrency bound (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// SetTracer installs a telemetry tick tracer on the pool. The tracer is
// a pure observer — it records wall-clock phase durations and intent
// counts into atomics and feeds nothing back into Run's control flow, so
// tracing never changes the apply order or the event stream. A nil
// tracer (the default) disables timing entirely.
func (p *Pool) SetTracer(tr *telemetry.TickTracer) {
	if p == nil {
		return
	}
	p.tracer = tr
}

// Tracer returns the pool's tracer (nil for a nil pool or none set).
func (p *Pool) Tracer() *telemetry.TickTracer {
	if p == nil {
		return nil
	}
	return p.tracer
}

// Run executes one tick's intent/apply cycle over n shards.
//
// gen(shard, emit) is called once per shard in [0, n), concurrently on up
// to p.Workers() goroutines. It must treat shared simulation state as
// read-only and confine mutation to the shard's own actors and to emitted
// intents; all randomness must come from streams owned by the shard's
// actors. emit is only valid during that gen call.
//
// After every shard has generated — a full barrier, so generation always
// observes the pre-tick state — apply is invoked serially on the calling
// goroutine for every intent, ordered by (shardID, emission seq). apply
// is where shared state may mutate.
func Run[T any](p *Pool, n int, gen func(shard int, emit func(T)), apply func(T)) {
	if n <= 0 {
		return
	}
	workers := p.Workers()
	if workers > n {
		workers = n
	}
	tr := p.Tracer()
	tr.SectionStart()
	bufs := make([][]T, n)
	// runShard generates one shard, timing it when tracing is on. The
	// timing wrapper is identical on the inline and pooled paths and
	// only writes to telemetry atomics, so it cannot affect the bytes.
	runShard := func(i int) {
		if !tr.Enabled() {
			gen(i, func(v T) { bufs[i] = append(bufs[i], v) })
			return
		}
		start := time.Now()
		gen(i, func(v T) { bufs[i] = append(bufs[i], v) })
		tr.ShardPlanned(time.Since(start), len(bufs[i]))
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			runShard(i)
		}
	} else {
		var wg sync.WaitGroup
		shards := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range shards {
					runShard(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			shards <- i
		}
		close(shards)
		wg.Wait()
	}
	var applyStart time.Time
	if tr.Enabled() {
		applyStart = time.Now()
	}
	applied := 0
	for _, buf := range bufs {
		applied += len(buf)
		for _, v := range buf {
			apply(v)
		}
	}
	if tr.Enabled() {
		tr.Applied(time.Since(applyStart), applied)
	}
}

// Chunks partitions count items into shards of at most chunk items and
// returns the shard bounds as (lo, hi) pairs flattened into a slice of
// [2]int. It exists so callers sharding large actor sets can amortize
// per-shard dispatch overhead while keeping the shard decomposition — and
// hence the (shardID, seq) merge order — a pure function of count and
// chunk, independent of worker count.
func Chunks(count, chunk int) [][2]int {
	if count <= 0 {
		return nil
	}
	if chunk <= 0 {
		chunk = 1
	}
	out := make([][2]int, 0, (count+chunk-1)/chunk)
	for lo := 0; lo < count; lo += chunk {
		hi := lo + chunk
		if hi > count {
			hi = count
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}
