// Package stats provides the small set of descriptive statistics the study
// needs: quantiles, medians, empirical CDFs, and histograms.
//
// Everything operates on float64 samples. Functions that need sorted input
// sort a private copy, so callers never see their slices mutated.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Quantile returns the p-quantile (0 <= p <= 1) of xs using linear
// interpolation between order statistics (type-7, the spreadsheet default).
// It returns NaN for an empty sample and panics for p outside [0,1].
func Quantile(xs []float64, p float64) float64 {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("stats: quantile p=%v outside [0,1]", p))
	}
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, p)
}

func quantileSorted(s []float64, p float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	h := p * float64(len(s)-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= len(s) {
		return s[len(s)-1]
	}
	frac := h - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// MedianInts is a convenience wrapper for integer samples.
func MedianInts(xs []int) float64 {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Median(fs)
}

// CDF is an empirical cumulative distribution function built from a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the sample. The input is copied.
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// NewCDFInts builds an empirical CDF from an integer sample.
func NewCDFInts(xs []int) *CDF {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	sort.Float64s(fs)
	return &CDF{sorted: fs}
}

// Len returns the sample size.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x), the fraction of the sample at or below x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	// First index with value > x.
	i := sort.SearchFloat64s(c.sorted, x)
	for i < len(c.sorted) && c.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the p-quantile of the sample.
func (c *CDF) Quantile(p float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("stats: quantile p=%v outside [0,1]", p))
	}
	return quantileSorted(c.sorted, p)
}

// Median returns the sample median.
func (c *CDF) Median() float64 { return c.Quantile(0.5) }

// Min and Max return the sample extremes (NaN when empty).
func (c *CDF) Min() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[0]
}

// Max returns the largest sample value.
func (c *CDF) Max() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[len(c.sorted)-1]
}

// Series materializes the CDF as n (x, P(X<=x)) points with x spaced evenly
// in quantile space — the form the paper's CDF figures plot.
func (c *CDF) Series(n int) []Point {
	if n < 2 || len(c.sorted) == 0 {
		return nil
	}
	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		p := float64(i) / float64(n-1)
		pts[i] = Point{X: c.Quantile(p), Y: p}
	}
	return pts
}

// Point is a single (x, y) sample of a plotted series.
type Point struct{ X, Y float64 }

// Histogram counts observations into fixed-width buckets over [min, max).
// Observations outside the range land in clamped edge buckets.
type Histogram struct {
	min, width float64
	counts     []int
	total      int
}

// NewHistogram builds a histogram with n buckets spanning [min, max).
// It panics if n <= 0 or max <= min.
func NewHistogram(min, max float64, n int) *Histogram {
	if n <= 0 {
		panic("stats: histogram with no buckets")
	}
	if max <= min {
		panic("stats: histogram with max <= min")
	}
	return &Histogram{min: min, width: (max - min) / float64(n), counts: make([]int, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int((x - h.min) / h.width)
	if i < 0 {
		i = 0
	}
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	h.counts[i]++
	h.total++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int { return h.total }

// Count returns the count in bucket i.
func (h *Histogram) Count(i int) int { return h.counts[i] }

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.counts) }

// Fraction returns bucket i's share of all observations (0 when empty).
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[i]) / float64(h.total)
}

// FormatSeries renders points as "x<tab>y" lines, one per point — convenient
// for dumping figure data that plots directly with any tool.
func FormatSeries(pts []Point) string {
	var b strings.Builder
	for _, p := range pts {
		fmt.Fprintf(&b, "%.4g\t%.4f\n", p.X, p.Y)
	}
	return b.String()
}
