package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	t.Parallel()
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) not NaN")
	}
}

func TestQuantileKnownValues(t *testing.T) {
	t.Parallel()
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.p); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestQuantileInterpolates(t *testing.T) {
	t.Parallel()
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.3); math.Abs(got-3) > 1e-12 {
		t.Fatalf("Quantile(0.3) = %v, want 3", got)
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	t.Parallel()
	xs := []float64{5, 1, 4, 2}
	Quantile(xs, 0.5)
	if xs[0] != 5 || xs[3] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestQuantilePanicsOutOfRange(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for p > 1")
		}
	}()
	Quantile([]float64{1}, 1.5)
}

func TestMedianOddEven(t *testing.T) {
	t.Parallel()
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("odd median %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("even median %v", got)
	}
	if got := MedianInts([]int{10, 20}); got != 15 {
		t.Fatalf("MedianInts %v", got)
	}
}

func TestCDFAt(t *testing.T) {
	t.Parallel()
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {99, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); got != tc.want {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCDFQuantileMedianMinMax(t *testing.T) {
	t.Parallel()
	c := NewCDFInts([]int{10, 20, 30, 40, 50})
	if c.Median() != 30 {
		t.Fatalf("median %v", c.Median())
	}
	if c.Min() != 10 || c.Max() != 50 {
		t.Fatalf("min/max %v/%v", c.Min(), c.Max())
	}
	if c.Len() != 5 {
		t.Fatalf("len %d", c.Len())
	}
}

func TestCDFEmpty(t *testing.T) {
	t.Parallel()
	c := NewCDF(nil)
	if !math.IsNaN(c.At(1)) || !math.IsNaN(c.Quantile(0.5)) || !math.IsNaN(c.Min()) || !math.IsNaN(c.Max()) {
		t.Fatal("empty CDF should return NaN everywhere")
	}
	if c.Series(10) != nil {
		t.Fatal("empty CDF Series not nil")
	}
}

func TestCDFSeriesMonotone(t *testing.T) {
	t.Parallel()
	check := func(seedVals []float64) bool {
		if len(seedVals) == 0 {
			return true
		}
		c := NewCDF(seedVals)
		pts := c.Series(20)
		for i := 1; i < len(pts); i++ {
			if pts[i].X < pts[i-1].X || pts[i].Y < pts[i-1].Y {
				return false
			}
		}
		return pts[0].Y == 0 && pts[len(pts)-1].Y == 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// CDF invariant: the p-quantile lies between the order statistics that
// bracket position p*(n-1) in the sorted sample.
func TestCDFQuantileBracketedByOrderStats(t *testing.T) {
	t.Parallel()
	check := func(vals []float64, pRaw uint8) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		p := float64(pRaw%101) / 100
		s := append([]float64(nil), vals...)
		sort.Float64s(s)
		h := p * float64(len(s)-1)
		lo, hi := int(math.Floor(h)), int(math.Ceil(h))
		q := NewCDF(vals).Quantile(p)
		return q >= s[lo] && q <= s[hi]
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFAtMatchesNaiveCount(t *testing.T) {
	t.Parallel()
	vals := []float64{5, 3, 8, 3, 9, 1, 3}
	c := NewCDF(vals)
	for _, x := range []float64{0, 1, 3, 4, 8, 9, 10} {
		n := 0
		for _, v := range vals {
			if v <= x {
				n++
			}
		}
		want := float64(n) / float64(len(vals))
		if got := c.At(x); math.Abs(got-want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestHistogram(t *testing.T) {
	t.Parallel()
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5, 9.99, -3, 42} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Fatalf("total %d", h.Total())
	}
	// -3 clamps to bucket 0; 42 clamps to bucket 4.
	if h.Count(0) != 3 { // 0, 1.9, -3
		t.Fatalf("bucket 0 count %d", h.Count(0))
	}
	if h.Count(1) != 1 || h.Count(2) != 1 || h.Count(4) != 2 {
		t.Fatalf("bucket counts %v %v %v", h.Count(1), h.Count(2), h.Count(4))
	}
	if got := h.Fraction(0); math.Abs(got-3.0/7) > 1e-12 {
		t.Fatalf("Fraction(0) = %v", got)
	}
	if h.Buckets() != 5 {
		t.Fatalf("Buckets() = %d", h.Buckets())
	}
}

func TestHistogramPanics(t *testing.T) {
	t.Parallel()
	for _, fn := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(5, 5, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestHistogramFractionEmpty(t *testing.T) {
	t.Parallel()
	h := NewHistogram(0, 1, 2)
	if h.Fraction(0) != 0 {
		t.Fatal("Fraction on empty histogram != 0")
	}
}

func TestFormatSeries(t *testing.T) {
	t.Parallel()
	s := FormatSeries([]Point{{X: 1, Y: 0.5}, {X: 2, Y: 1}})
	want := "1\t0.5000\n2\t1.0000\n"
	if s != want {
		t.Fatalf("FormatSeries = %q, want %q", s, want)
	}
}

func TestQuantileAgainstSortedReference(t *testing.T) {
	t.Parallel()
	check := func(vals []float64) bool {
		clean := vals[:0]
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := append([]float64(nil), clean...)
		sort.Float64s(s)
		// p=0 must be min, p=1 must be max.
		return Quantile(clean, 0) == s[0] && Quantile(clean, 1) == s[len(s)-1]
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
