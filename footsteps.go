// Package footsteps reproduces "Following Their Footsteps: Characterizing
// Account Automation Abuse and Defenses" (DeKoven et al., IMC 2018) as a
// runnable system: a simulated photo-sharing platform, the five Account
// Automation Services the paper studied, the honeypot measurement
// framework, platform-side detection, revenue estimation, and the
// intervention experiments.
//
// The entry point is a Study, built over a Config:
//
//	study := footsteps.NewStudy(footsteps.DefaultConfig())
//	table5, err := study.Reciprocation(9, 3)
//	fmt.Print(footsteps.FormatTable5(table5))
//
// A Study owns one simulated world; each of the paper's experiment
// families consumes the world's timeline, so build a fresh Study per
// experiment:
//
//   - Reciprocation: Table 5 (§4.3) — honeypot measurement of organic
//     reciprocation rates.
//   - Business: Tables 6–11 and Figures 2–4 (§5) — 90-day customer,
//     geography, and revenue characterization.
//   - NarrowIntervention / BroadIntervention: Figures 5–7 (§6) — blocking
//     versus delayed removal and how the services react.
//   - Adaptation: the §6.4 epilogue — proxy-network evasion and the
//     Hublaagram endgame.
//
// Static catalog data (Tables 1–4) is available without running anything
// via FormatTable1 … FormatTable4 and the aas catalog they render.
//
// Everything is deterministic under Config.Seed and runs on a simulated
// clock; a full 90-day study executes in seconds. See DESIGN.md for the
// substitution argument mapping each paper artifact to a module here, and
// EXPERIMENTS.md for paper-versus-measured results.
package footsteps

import (
	"footsteps/internal/core"
)

// Config sizes a study; see DefaultConfig and TestConfig.
type Config = core.Config

// Option mutates a Config during construction; see New.
type Option = core.Option

// DefaultConfig is the 1/500-scale, 90-day harness configuration.
func DefaultConfig() Config { return core.DefaultConfig() }

// TestConfig is a small configuration suitable for quick runs and tests.
func TestConfig() Config { return core.TestConfig() }

// New returns DefaultConfig with the options applied:
//
//	cfg := footsteps.New(footsteps.WithWorkers(8), footsteps.WithShards(16))
func New(opts ...Option) Config { return core.New(opts...) }

// NewTest returns TestConfig with the options applied.
func NewTest(opts ...Option) Config { return core.NewTest(opts...) }

// Functional options for New/NewTest, re-exported from the study core.
var (
	WithSeed              = core.WithSeed
	WithScale             = core.WithScale
	WithDays              = core.WithDays
	WithWorkers           = core.WithWorkers
	WithShards            = core.WithShards
	WithGraphWrites       = core.WithGraphWrites
	WithOrganicPopulation = core.WithOrganicPopulation
	WithPoolSize          = core.WithPoolSize
	WithVPNUsers          = core.WithVPNUsers
	WithIPDailyBudget     = core.WithIPDailyBudget
	WithScratchReuse      = core.WithScratchReuse
	WithTelemetry         = core.WithTelemetry
	WithTrace             = core.WithTrace
	WithFaults            = core.WithFaults
	WithFaultProfile      = core.WithFaultProfile
)

// Result types, re-exported from the study core.
type (
	// Table5 is the reciprocation measurement (§4.3).
	Table5 = core.Table5
	// Table5Cell is one service × account-kind × action cell.
	Table5Cell = core.Table5Cell
	// BusinessResults carries Tables 6–11 and Figures 2–4 (§5).
	BusinessResults = core.BusinessResults
	// InterventionResults carries Figures 5–7 (§6).
	InterventionResults = core.InterventionResults
	// AdaptationResults carries the §6.4 epilogue measurements.
	AdaptationResults = core.AdaptationResults
	// EngagementResults carries the §2 engagement-rate uplift study.
	EngagementResults = core.EngagementResults
	// GraphDetectionResults compares the graph baseline to signals.
	GraphDetectionResults = core.GraphDetectionResults
	// Replication holds a metric set measured across independent seeds.
	Replication = core.Replication
	// Finding is one calibration check against the paper's results.
	Finding = core.Finding
)

// Study is one simulated world plus the paper's experiment drivers.
type Study struct {
	world *core.World
}

// NewStudy builds a fresh world for one experiment family.
func NewStudy(cfg Config) *Study {
	return &Study{world: core.NewWorld(cfg)}
}

// World exposes the underlying world for advanced scenarios (custom
// experiments, direct access to the platform, population, and services).
func (s *Study) World() *core.World { return s.world }

// Reciprocation runs the §4.3 honeypot experiment with emptyPer empty and
// livedPer lived-in honeypots per (service, action) cell.
func (s *Study) Reciprocation(emptyPer, livedPer int) (*Table5, error) {
	return s.world.ReciprocationStudy(emptyPer, livedPer)
}

// Business runs the §5 characterization over the configured window.
func (s *Study) Business() (*BusinessResults, error) {
	return s.world.BusinessStudy()
}

// NarrowIntervention runs §6.3: calibDays of threshold calibration, then
// weeks weeks of block/delay/control bins covering ≈10% of customers each.
func (s *Study) NarrowIntervention(calibDays, weeks int) (*InterventionResults, error) {
	return s.world.NarrowIntervention(calibDays, weeks)
}

// BroadIntervention runs §6.4: delay for switchDay days, then block, on
// 90% of accounts, for days experiment days after calibDays calibration.
func (s *Study) BroadIntervention(calibDays, days, switchDay int) (*InterventionResults, error) {
	return s.world.BroadIntervention(calibDays, days, switchDay)
}

// Adaptation runs the epilogue: broad blocking, proxy evasion, endgame.
func (s *Study) Adaptation(calibDays, phaseDays int) (*AdaptationResults, error) {
	return s.world.AdaptationStudy(calibDays, phaseDays)
}

// Engagement measures the §2 engagement-rate uplift bought from a paid
// like tier, over n treated/control account pairs for the given days.
// Requires Config.GraphWrites.
func (s *Study) Engagement(n, days int) (*EngagementResults, error) {
	return s.world.EngagementStudy(n, days)
}

// GraphDetection runs the FRAUDAR-baseline-vs-signals comparison.
func (s *Study) GraphDetection() (*GraphDetectionResults, error) {
	return s.world.GraphDetectionStudy()
}

// Rendering helpers producing paper-style text tables.
var (
	// FormatTable1 renders the offerings matrix (static catalog data).
	FormatTable1 = core.FormatTable1
	// FormatTable2 renders reciprocity pricing.
	FormatTable2 = core.FormatTable2
	// FormatTable3 renders Hublaagram pricing.
	FormatTable3 = core.FormatTable3
	// FormatTable4 renders Followersgratis pricing.
	FormatTable4 = core.FormatTable4
	// FormatTable5 renders a measured reciprocation table.
	FormatTable5 = core.FormatTable5
	// FormatBusiness renders Tables 6–11 and Figure 2–4 summaries.
	FormatBusiness = core.FormatBusiness
	// FormatIntervention renders Figures 5–7 day series.
	FormatIntervention = core.FormatIntervention
	// FormatRevenueSummary prints the combined monthly revenue headline.
	FormatRevenueSummary = core.FormatRevenueSummary

	// ExportBusiness writes Tables 6–11 and Figures 2–4 as TSV files.
	ExportBusiness = core.ExportBusiness
	// ExportIntervention writes Figures 5–7 day series as TSV files.
	ExportIntervention = core.ExportIntervention

	// CheckTable5 and CheckBusiness machine-verify measured results
	// against the paper's published bands; FormatFindings renders the
	// report. The `footsteps check` command wraps all three.
	CheckTable5    = core.CheckTable5
	CheckBusiness  = core.CheckBusiness
	FormatFindings = core.FormatFindings
)
