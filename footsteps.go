// Package footsteps reproduces "Following Their Footsteps: Characterizing
// Account Automation Abuse and Defenses" (DeKoven et al., IMC 2018) as a
// runnable system: a simulated photo-sharing platform, the five Account
// Automation Services the paper studied, the honeypot measurement
// framework, platform-side detection, revenue estimation, and the
// intervention experiments.
//
// The entry point is a Study, built over a Config:
//
//	study := footsteps.NewStudy(footsteps.DefaultConfig())
//	table5, err := study.Reciprocation(9, 3)
//	fmt.Print(footsteps.FormatTable5(table5))
//
// A Study owns one simulated world; each of the paper's experiment
// families consumes the world's timeline, so build a fresh Study per
// experiment:
//
//   - Reciprocation: Table 5 (§4.3) — honeypot measurement of organic
//     reciprocation rates.
//   - Business: Tables 6–11 and Figures 2–4 (§5) — 90-day customer,
//     geography, and revenue characterization.
//   - NarrowIntervention / BroadIntervention: Figures 5–7 (§6) — blocking
//     versus delayed removal and how the services react.
//   - Adaptation: the §6.4 epilogue — proxy-network evasion and the
//     Hublaagram endgame.
//
// Static catalog data (Tables 1–4) is available without running anything
// via FormatTable1 … FormatTable4 and the aas catalog they render.
//
// Everything is deterministic under Config.Seed and runs on a simulated
// clock; a full 90-day study executes in seconds. See DESIGN.md for the
// substitution argument mapping each paper artifact to a module here, and
// EXPERIMENTS.md for paper-versus-measured results.
package footsteps

import (
	"footsteps/internal/core"
	"footsteps/internal/wire"
)

// Config sizes a study; see DefaultConfig and TestConfig.
type Config = core.Config

// Option mutates a Config during construction; see New.
type Option = core.Option

// DefaultConfig is the 1/500-scale, 90-day harness configuration.
func DefaultConfig() Config { return core.DefaultConfig() }

// TestConfig is a small configuration suitable for quick runs and tests.
func TestConfig() Config { return core.TestConfig() }

// New returns DefaultConfig with the options applied:
//
//	cfg := footsteps.New(footsteps.WithWorkers(8), footsteps.WithShards(16))
func New(opts ...Option) Config { return core.New(opts...) }

// NewTest returns TestConfig with the options applied.
func NewTest(opts ...Option) Config { return core.NewTest(opts...) }

// Functional options for New/NewTest, re-exported from the study core
// and grouped by concern.

// Experiment shape: what is simulated and for how long.
var (
	// WithSeed sets the RNG seed every stream derives from.
	WithSeed = core.WithSeed
	// WithScale sets the customer-dynamics scale versus the paper.
	WithScale = core.WithScale
	// WithDays sets the measurement window length.
	WithDays = core.WithDays
	// WithGraphWrites materializes real follow/like edges (honeypot and
	// graph-detection studies need it; characterization does not).
	WithGraphWrites = core.WithGraphWrites
	// WithOrganicPopulation sizes the organic account population.
	WithOrganicPopulation = core.WithOrganicPopulation
	// WithPoolSize sizes the reciprocity-service account pools.
	WithPoolSize = core.WithPoolSize
	// WithVPNUsers sets how many organic users share VPN egress IPs.
	WithVPNUsers = core.WithVPNUsers
	// WithIPDailyBudget caps per-IP daily actions before IP defenses fire.
	WithIPDailyBudget = core.WithIPDailyBudget
)

// Execution: how the deterministic timeline is driven. Neither option
// changes any output, only speed.
var (
	// WithWorkers sets the worker-pool size for parallel stepping.
	WithWorkers = core.WithWorkers
	// WithShards sets the lock-stripe count for platform state.
	WithShards = core.WithShards
	// WithScratchReuse toggles per-worker scratch reuse.
	WithScratchReuse = core.WithScratchReuse
)

// Observation: pure observers of the run (metrics, traces, faults).
var (
	// WithTelemetry attaches a metric registry (see docs/OBSERVABILITY.md).
	WithTelemetry = core.WithTelemetry
	// WithTrace attaches a deterministic FTRC1 span tracer.
	WithTrace = core.WithTrace
	// WithFaults enables a built-in fault scenario by name.
	WithFaults = core.WithFaults
	// WithFaultProfile enables a custom fault profile.
	WithFaultProfile = core.WithFaultProfile
)

// Durability: checkpoint artifacts for crash recovery and replay.
var (
	// WithCheckpointEvery sets the FSNAP1 checkpoint cadence in days.
	WithCheckpointEvery = core.WithCheckpointEvery
	// WithCheckpointDir sets where checkpoints are written.
	WithCheckpointDir = core.WithCheckpointDir
)

// Serving: the HTTP/WS /v1 front end (see docs/API.md). The world loop
// stays single-writer; handlers only validate and enqueue.
var (
	// WithServer sets the listen address for footsteps/internal/server.
	WithServer = core.WithServer
	// WithServeQueueDepth bounds the ingress queue; beyond it requests
	// shed with the "overloaded" error code.
	WithServeQueueDepth = core.WithServeQueueDepth
	// WithServePace sets sim-seconds advanced per wall-second.
	WithServePace = core.WithServePace
	// WithServeMaxBatch caps envelopes applied per world-loop drain.
	WithServeMaxBatch = core.WithServeMaxBatch
	// WithServeIngressLog records every admitted envelope batch to a
	// FING1 log that `footsteps replay -ingress-log` re-drives.
	WithServeIngressLog = core.WithServeIngressLog
)

// Result types, re-exported from the study core.
type (
	// Table5 is the reciprocation measurement (§4.3).
	Table5 = core.Table5
	// Table5Cell is one service × account-kind × action cell.
	Table5Cell = core.Table5Cell
	// BusinessResults carries Tables 6–11 and Figures 2–4 (§5).
	BusinessResults = core.BusinessResults
	// InterventionResults carries Figures 5–7 (§6).
	InterventionResults = core.InterventionResults
	// AdaptationResults carries the §6.4 epilogue measurements.
	AdaptationResults = core.AdaptationResults
	// EngagementResults carries the §2 engagement-rate uplift study.
	EngagementResults = core.EngagementResults
	// GraphDetectionResults compares the graph baseline to signals.
	GraphDetectionResults = core.GraphDetectionResults
	// Replication holds a metric set measured across independent seeds.
	Replication = core.Replication
	// Finding is one calibration check against the paper's results.
	Finding = core.Finding
)

// Wire protocol surface, re-exported from the internal wire package so
// external clients of the /v1 HTTP/WS API (see docs/API.md) never import
// internal/... paths.
type (
	// Request is the versioned /v1 request envelope.
	Request = wire.Request
	// Outcome is the /v1 response envelope.
	Outcome = wire.Outcome
	// Event is the wire form of one platform event, as streamed over
	// the /v1/events WebSocket.
	Event = wire.Event
	// Op names a request operation ("register", "login", "like", ...).
	Op = wire.Op
	// Status classifies an outcome ("allowed", "blocked", ...).
	Status = wire.Status
	// Code is a stable machine-readable error code.
	Code = wire.Code
	// WireError is a typed protocol error carrying a Code.
	WireError = wire.Error
)

// WireVersion is the envelope schema version this build speaks.
const WireVersion = wire.Version

// Request operations.
const (
	OpRegister = wire.OpRegister
	OpLogin    = wire.OpLogin
	OpFollow   = wire.OpFollow
	OpUnfollow = wire.OpUnfollow
	OpLike     = wire.OpLike
	OpComment  = wire.OpComment
	OpPost     = wire.OpPost
)

// Outcome statuses.
const (
	StatusAllowed     = wire.StatusAllowed
	StatusBlocked     = wire.StatusBlocked
	StatusRateLimited = wire.StatusRateLimited
	StatusFailed      = wire.StatusFailed
	StatusUnavailable = wire.StatusUnavailable
	StatusError       = wire.StatusError
)

// Error codes, grouped as in docs/API.md: envelope-level rejections
// (pure functions of the bytes), admission-control rejections, and
// state-dependent failures decided by the world.
const (
	CodeTooLarge     = wire.CodeTooLarge
	CodeMalformed    = wire.CodeMalformed
	CodeBadVersion   = wire.CodeBadVersion
	CodeUnknownOp    = wire.CodeUnknownOp
	CodeMissingField = wire.CodeMissingField
	CodeBadField     = wire.CodeBadField

	CodeOverloaded   = wire.CodeOverloaded
	CodeShuttingDown = wire.CodeShuttingDown

	CodeUsernameTaken  = wire.CodeUsernameTaken
	CodeBadCredentials = wire.CodeBadCredentials
	CodeUnknownToken   = wire.CodeUnknownToken
	CodeSessionRevoked = wire.CodeSessionRevoked
	CodeUnknownASN     = wire.CodeUnknownASN
	CodeNotFound       = wire.CodeNotFound
	CodeRateLimited    = wire.CodeRateLimited
	CodeBlocked        = wire.CodeBlocked
	CodeUnavailable    = wire.CodeUnavailable
	CodeAccountGone    = wire.CodeAccountGone
	CodeInternal       = wire.CodeInternal
)

// Study is one simulated world plus the paper's experiment drivers.
type Study struct {
	world *core.World
}

// NewStudy builds a fresh world for one experiment family.
func NewStudy(cfg Config) *Study {
	return &Study{world: core.NewWorld(cfg)}
}

// World exposes the underlying world for advanced scenarios (custom
// experiments, direct access to the platform, population, and services).
func (s *Study) World() *core.World { return s.world }

// Reciprocation runs the §4.3 honeypot experiment with emptyPer empty and
// livedPer lived-in honeypots per (service, action) cell.
func (s *Study) Reciprocation(emptyPer, livedPer int) (*Table5, error) {
	return s.world.ReciprocationStudy(emptyPer, livedPer)
}

// Business runs the §5 characterization over the configured window.
func (s *Study) Business() (*BusinessResults, error) {
	return s.world.BusinessStudy()
}

// NarrowIntervention runs §6.3: calibDays of threshold calibration, then
// weeks weeks of block/delay/control bins covering ≈10% of customers each.
func (s *Study) NarrowIntervention(calibDays, weeks int) (*InterventionResults, error) {
	return s.world.NarrowIntervention(calibDays, weeks)
}

// BroadIntervention runs §6.4: delay for switchDay days, then block, on
// 90% of accounts, for days experiment days after calibDays calibration.
func (s *Study) BroadIntervention(calibDays, days, switchDay int) (*InterventionResults, error) {
	return s.world.BroadIntervention(calibDays, days, switchDay)
}

// Adaptation runs the epilogue: broad blocking, proxy evasion, endgame.
func (s *Study) Adaptation(calibDays, phaseDays int) (*AdaptationResults, error) {
	return s.world.AdaptationStudy(calibDays, phaseDays)
}

// Engagement measures the §2 engagement-rate uplift bought from a paid
// like tier, over n treated/control account pairs for the given days.
// Requires Config.GraphWrites.
func (s *Study) Engagement(n, days int) (*EngagementResults, error) {
	return s.world.EngagementStudy(n, days)
}

// GraphDetection runs the FRAUDAR-baseline-vs-signals comparison.
func (s *Study) GraphDetection() (*GraphDetectionResults, error) {
	return s.world.GraphDetectionStudy()
}

// Rendering helpers producing paper-style text tables.
var (
	// FormatTable1 renders the offerings matrix (static catalog data).
	FormatTable1 = core.FormatTable1
	// FormatTable2 renders reciprocity pricing.
	FormatTable2 = core.FormatTable2
	// FormatTable3 renders Hublaagram pricing.
	FormatTable3 = core.FormatTable3
	// FormatTable4 renders Followersgratis pricing.
	FormatTable4 = core.FormatTable4
	// FormatTable5 renders a measured reciprocation table.
	FormatTable5 = core.FormatTable5
	// FormatBusiness renders Tables 6–11 and Figure 2–4 summaries.
	FormatBusiness = core.FormatBusiness
	// FormatIntervention renders Figures 5–7 day series.
	FormatIntervention = core.FormatIntervention
	// FormatRevenueSummary prints the combined monthly revenue headline.
	FormatRevenueSummary = core.FormatRevenueSummary

	// ExportBusiness writes Tables 6–11 and Figures 2–4 as TSV files.
	ExportBusiness = core.ExportBusiness
	// ExportIntervention writes Figures 5–7 day series as TSV files.
	ExportIntervention = core.ExportIntervention

	// CheckTable5 and CheckBusiness machine-verify measured results
	// against the paper's published bands; FormatFindings renders the
	// report. The `footsteps check` command wraps all three.
	CheckTable5    = core.CheckTable5
	CheckBusiness  = core.CheckBusiness
	FormatFindings = core.FormatFindings
)
